package live

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bat"
	"repro/internal/core"
	"repro/internal/minisql"
)

// TestCacheHitServesRepeatPin: the tentpole behavior — a fragment that
// already flowed past is served node-locally on the next pin, with the
// exact same bytes the ring would have delivered.
func TestCacheHitServesRepeatPin(t *testing.T) {
	r := newTestRing(t, 3)
	defer r.Close()
	reader := r.Node(1)

	first, err := reader.Fetch("c.t_id") // owned by node 0: crosses the ring
	if err != nil {
		t.Fatal(err)
	}
	warm := reader.CacheStats()
	if warm.Inserts == 0 {
		t.Fatal("ring delivery did not populate the hot-set cache")
	}
	second, err := reader.Fetch("c.t_id")
	if err != nil {
		t.Fatal(err)
	}
	after := reader.CacheStats()
	if after.Hits <= warm.Hits {
		t.Fatalf("repeat pin did not hit the cache: hits %d -> %d", warm.Hits, after.Hits)
	}
	if !bytes.Equal(bat.AppendMarshal(nil, first), bat.AppendMarshal(nil, second)) {
		t.Fatal("cached pin returned different bytes than the ring delivery")
	}
}

// TestCacheDisabledMatchesCirculation: CacheBytes=0 keeps the
// pure-circulation path and produces byte-identical results; no cache
// counter ever moves.
func TestCacheDisabledMatchesCirculation(t *testing.T) {
	cols, schema := testColumns()
	off := DefaultConfig()
	off.CacheBytes = 0
	rOff, err := NewRing(3, cols, schema, off)
	if err != nil {
		t.Fatal(err)
	}
	defer rOff.Close()
	rOn, err := NewRing(3, cols, schema, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer rOn.Close()

	q := "select t.name, c.val from t, c where c.t_id = t.id and c.val > 150 order by c.val"
	for i := 0; i < 3; i++ {
		a, err := rOff.Node(2).ExecSQL(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := rOn.Node(2).ExecSQL(q)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(resultBytes(t, a), resultBytes(t, b)) {
			t.Fatal("cache-on result differs from cache-off")
		}
	}
	cs := rOff.CacheStats()
	if cs.Hits != 0 || cs.Misses != 0 || cs.Inserts != 0 || cs.Coalesced != 0 {
		t.Fatalf("disabled cache counted activity: %+v", cs)
	}
	if on := rOn.CacheStats(); on.Hits == 0 {
		t.Fatal("enabled cache never hit on a repeated query")
	}
}

// TestCacheStaleNeverServed is the staleness property at its sharpest:
// the instant UpdateColumn returns, the catalog version has advanced,
// so the cached entry for the old version can no longer validate — a
// cache hit at any later pin time can never return the old payload.
func TestCacheStaleNeverServed(t *testing.T) {
	r := newTestRing(t, 3)
	defer r.Close()
	reader := r.Node(1)

	old, err := reader.Fetch("c.t_id")
	if err != nil {
		t.Fatal(err)
	}
	ids, _ := r.Fragments("c.t_id")
	id := ids[0]
	if got := r.fragVersion(id); got != 0 {
		t.Fatalf("base version = %d", got)
	}
	if reader.hot.get(id, 0) == nil {
		t.Fatal("warm fetch did not leave the fragment resident")
	}

	newVals := []int64{7, 7, 7, 7}
	if _, err := r.UpdateColumn("c.t_id", func(*bat.BAT) *bat.BAT {
		return bat.MakeInts("c.t_id", newVals)
	}); err != nil {
		t.Fatal(err)
	}
	// The catalog version advanced inside UpdateColumn's critical
	// section: validation against it can never accept the old entry.
	cur := r.fragVersion(id)
	if cur != 1 {
		t.Fatalf("catalog version = %d after update", cur)
	}
	if b := reader.hot.get(id, cur); b != nil {
		t.Fatal("cache served an entry for a version it never stored")
	}
	// And the new version becomes pinnable (the owner re-sends its
	// store on the next pass), after which repeat pins are cache hits
	// of the NEW version.
	deadline := time.Now().Add(5 * time.Second)
	var got *bat.BAT
	for time.Now().Before(deadline) {
		got, err = reader.Fetch("c.t_id")
		if err != nil {
			t.Fatal(err)
		}
		if got.Tail().Int(0) == 7 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got.Tail().Int(0) != 7 {
		t.Fatalf("new version never visible (still %d)", got.Tail().Int(0))
	}
	if old.Tail().Int(0) != 2 {
		t.Fatal("reader's old snapshot was mutated by the update")
	}
	pre := reader.CacheStats()
	again, err := reader.Fetch("c.t_id")
	if err != nil {
		t.Fatal(err)
	}
	if again.Tail().Int(0) != 7 {
		t.Fatal("repeat pin after update returned stale data")
	}
	if post := reader.CacheStats(); post.Hits <= pre.Hits {
		t.Fatal("repeat pin of the new version did not come from the cache")
	}
}

// TestSnapshotConsistencyUnderUpdates is the merge property test:
// concurrent UpdateColumn calls race against readers pinning a
// fragmented column, and every merged result must be a single-version
// snapshot — all values equal — never a mix of old and new fragments.
// The column is built so any cross-version mix is instantly visible:
// at version v every row holds v.
func TestSnapshotConsistencyUnderUpdates(t *testing.T) {
	const rows = 4096
	vals := make([]int64, rows) // version 0: all zeros
	cols := map[string]*bat.BAT{"p.val": bat.MakeInts("p.val", vals)}
	schema := fragSchema()
	cfg := DefaultConfig()
	cfg.FragmentRows = 512 // 8 fragments over 3 nodes
	r, err := NewRing(3, cols, schema, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if ids, _ := r.Fragments("p.val"); len(ids) != 8 {
		t.Fatalf("fragments = %d, want 8", len(ids))
	}

	stop := make(chan struct{})
	var updates int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, err := r.UpdateColumn("p.val", func(cur *bat.BAT) *bat.BAT {
				next := cur.Tail().Int(0) + 1
				nv := make([]int64, rows)
				for i := range nv {
					nv[i] = next
				}
				return bat.MakeInts("p.val", nv)
			})
			if err != nil {
				t.Error(err)
				return
			}
			atomic.AddInt64(&updates, 1)
			time.Sleep(3 * time.Millisecond)
		}
	}()

	readErr := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			node := r.Node(1 + w%2)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var versionSeen int64
				if i%2 == 0 {
					b, err := node.Fetch("p.val")
					if err != nil {
						readErr <- err
						return
					}
					if b.Len() != rows {
						readErr <- fmt.Errorf("merged pin has %d rows, want %d", b.Len(), rows)
						return
					}
					versionSeen = b.Tail().Int(0)
					for j := 1; j < rows; j++ {
						if b.Tail().Int(j) != versionSeen {
							readErr <- fmt.Errorf("mixed-version merge: row 0 = %d, row %d = %d",
								versionSeen, j, b.Tail().Int(j))
							return
						}
					}
				} else {
					rs, err := node.ExecSQL("select sum(val), count(*) from p")
					if err != nil {
						readErr <- err
						return
					}
					sum, count := rs.Row(0)[0].(int64), rs.Row(0)[1].(int64)
					if count != rows {
						readErr <- fmt.Errorf("count = %d, want %d", count, rows)
						return
					}
					if sum%rows != 0 {
						readErr <- fmt.Errorf("mixed-version aggregate: sum %d is not a multiple of %d", sum, rows)
						return
					}
					versionSeen = sum / rows
				}
				if versionSeen < 0 {
					readErr <- fmt.Errorf("negative version %d", versionSeen)
					return
				}
			}
		}(w)
	}

	time.Sleep(1200 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-readErr:
		t.Fatal(err)
	default:
	}
	if atomic.LoadInt64(&updates) < 2 {
		t.Fatalf("only %d updates landed; the race was never exercised", updates)
	}
}

func fragSchema() minisql.Schema {
	return minisql.MapSchema{"p": {"val"}}
}

// TestCoalescedConcurrentPins: concurrent cold pins of the same
// fragment share one in-flight ring wait instead of each registering a
// waiter (singleflight), and all of them get the right payload.
func TestCoalescedConcurrentPins(t *testing.T) {
	cols, schema := testColumns()
	r, err := NewRing(3, cols, schema, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	reader := r.Node(1) // c.t_id is owned by node 0: the pin is cold and crosses the ring

	const readers = 24
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b, err := reader.Fetch("c.t_id")
			if err != nil {
				errs <- err
				return
			}
			if b.Len() != 4 || b.Tail().Int(0) != 2 {
				errs <- fmt.Errorf("bad payload: %s", b.Dump(5))
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	cs := reader.CacheStats()
	if cs.Coalesced == 0 && cs.Hits == 0 {
		t.Fatal("24 concurrent cold pins neither coalesced nor hit the cache")
	}
	// No waiter bookkeeping may survive the queries.
	reader.mu.Lock()
	leftoverWaiters, leftoverCached := len(reader.waiters), len(reader.cached)
	reader.mu.Unlock()
	if leftoverWaiters != 0 || leftoverCached != 0 {
		t.Fatalf("leftover waiters=%d cached=%d after coalesced pins", leftoverWaiters, leftoverCached)
	}
}

// TestHopAndCacheCountersUnderRace hammers the instrumentation readers
// (HopBytes, MaxHopBytes, CacheStats, WireCacheStats) while queries
// drive concurrent sends — the race detector verifies every counter is
// read and written atomically.
func TestHopAndCacheCountersUnderRace(t *testing.T) {
	r := newTestRing(t, 3)
	defer r.Close()

	done := make(chan struct{})
	var poller sync.WaitGroup
	poller.Add(1)
	go func() {
		defer poller.Done()
		var sink int64
		for {
			select {
			case <-done:
				_ = sink
				return
			default:
			}
			sink += r.HopBytes() + r.MaxHopBytes()
			cs := r.CacheStats()
			sink += cs.Hits + cs.RingWaitNanos
			for i := 0; i < r.Size(); i++ {
				h, m := r.Node(i).WireCacheStats()
				sink += h + m
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < r.Size(); i++ {
		for k := 0; k < 4; k++ {
			wg.Add(1)
			go func(node int) {
				defer wg.Done()
				if _, err := r.Node(node).ExecSQL("select c.t_id from t, c where c.t_id = t.id"); err != nil {
					t.Error(err)
				}
			}(i)
		}
	}
	wg.Wait()
	close(done)
	poller.Wait()
}

// ---------------------------------------------------------------------
// hotCache unit tests
// ---------------------------------------------------------------------

func intsOfBytes(n int) *bat.BAT { return bat.MakeInts("x", make([]int64, n/8)) }

// TestHotCacheLOIEviction: under byte pressure the lowest-interest
// entry goes first, and interest decays so a once-hot fragment ages
// out.
func TestHotCacheLOIEviction(t *testing.T) {
	one := intsOfBytes(1024).Bytes()
	h := newHotCache(2*one+one/2, CacheLOI, 0)
	h.put(1, 0, intsOfBytes(1024))
	h.put(2, 0, intsOfBytes(1024))
	for i := 0; i < 8; i++ {
		if h.get(1, 0) == nil {
			t.Fatal("resident entry missed")
		}
	}
	h.put(3, 0, intsOfBytes(1024)) // over budget: entry 2 (loi 1) must go, not entry 1 (loi 9)
	if h.get(1, 0) == nil {
		t.Fatal("high-interest entry was evicted")
	}
	if h.get(2, 0) != nil {
		t.Fatal("low-interest entry survived over budget")
	}
	st := h.stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("evictions=%d entries=%d, want 1/2", st.Evictions, st.Entries)
	}
}

// TestHotCacheLRUEviction: CacheLRU ignores interest and evicts the
// least recently touched entry.
func TestHotCacheLRUEviction(t *testing.T) {
	one := intsOfBytes(1024).Bytes()
	h := newHotCache(2*one+one/2, CacheLRU, 0)
	h.put(1, 0, intsOfBytes(1024))
	h.put(2, 0, intsOfBytes(1024))
	for i := 0; i < 8; i++ {
		h.get(1, 0) // interest, but older recency after the next touch
	}
	h.get(2, 0)
	h.put(3, 0, intsOfBytes(1024))
	if h.get(2, 0) == nil {
		t.Fatal("most recently used entry was evicted")
	}
	if h.get(1, 0) != nil {
		t.Fatal("least recently used entry survived")
	}
}

// TestHotCacheVersioning: stale versions are dropped on sight, newer
// deliveries replace older ones, and an older delivery never replaces
// a newer resident version (late ring arrivals after an update).
func TestHotCacheVersioning(t *testing.T) {
	h := newHotCache(1<<20, CacheLOI, 0)
	h.put(1, 0, intsOfBytes(256))
	if h.get(1, 1) != nil {
		t.Fatal("served a version that was never stored")
	}
	if st := h.stats(); st.Stale != 1 {
		t.Fatalf("stale = %d, want 1", st.Stale)
	}
	h.put(1, 2, intsOfBytes(256))
	h.put(1, 1, intsOfBytes(256)) // late old delivery must not downgrade
	if h.get(1, 2) == nil {
		t.Fatal("newer version displaced by an older delivery")
	}
	h.invalidateBelow(1, 3)
	if h.get(1, 2) != nil {
		t.Fatal("invalidated entry still served")
	}
}

// TestHotCacheBudgetGate: a payload larger than the whole budget is
// not admitted, and cannot evict the entire cache to make room.
func TestHotCacheBudgetGate(t *testing.T) {
	h := newHotCache(1024, CacheLOI, 0)
	h.put(1, 0, intsOfBytes(512))
	h.put(2, 0, intsOfBytes(64<<10))
	if h.get(2, 0) != nil {
		t.Fatal("over-budget payload admitted")
	}
	if h.get(1, 0) == nil {
		t.Fatal("resident entry evicted by an inadmissible payload")
	}
}

// TestFlightLifecycle: the first joiner leads, later joiners follow,
// and finishing wakes the followers with the leader's outcome; a new
// join after the finish starts a fresh flight.
func TestFlightLifecycle(t *testing.T) {
	h := newHotCache(1<<20, CacheLOI, 0)
	fl, leader := h.joinFlight(9, 0)
	if !leader {
		t.Fatal("first joiner did not lead")
	}
	fl2, leader2 := h.joinFlight(9, 0)
	if leader2 || fl2 != fl {
		t.Fatal("second joiner did not follow the first")
	}
	if _, leaderOther := h.joinFlight(9, 1); !leaderOther {
		t.Fatal("a different version joined the wrong flight")
	}
	payload := intsOfBytes(64)
	h.finishFlight(9, 0, fl, payload, 0)
	select {
	case <-fl.done:
	default:
		t.Fatal("finish did not wake followers")
	}
	if fl.b != payload {
		t.Fatal("follower read the wrong payload")
	}
	if _, leader3 := h.joinFlight(9, 0); !leader3 {
		t.Fatal("post-finish join did not start a fresh flight")
	}
	if st := h.stats(); st.Coalesced != 1 {
		t.Fatalf("coalesced = %d, want 1", st.Coalesced)
	}
}

// TestLocalHitsFeedLOI: pins served node-locally still count as
// interest — the pending hits fold into the copy count the next time
// the fragment flows past, so the owner's LOI sees cached readers.
func TestLocalHitsFeedLOI(t *testing.T) {
	env := &countEnv{}
	rt := core.New(1, env, core.DefaultConfig())
	rt.NoteLocalHit(7)
	rt.NoteLocalHit(7)
	rt.OnBAT(core.BATMsg{Owner: 0, BAT: 7, Size: 10})
	if env.lastSent.Copies != 2 {
		t.Fatalf("forwarded Copies = %d, want 2 (local hits folded in)", env.lastSent.Copies)
	}
	if rt.Stats().CacheInterest != 2 {
		t.Fatalf("CacheInterest = %d, want 2", rt.Stats().CacheInterest)
	}
	// Drained: the next pass carries only its own copies.
	rt.OnBAT(core.BATMsg{Owner: 0, BAT: 7, Size: 10})
	if env.lastSent.Copies != 0 {
		t.Fatalf("second pass Copies = %d, want 0", env.lastSent.Copies)
	}
}

// countEnv is a minimal core.Env recording the last data send.
type countEnv struct{ lastSent core.BATMsg }

func (e *countEnv) Now() time.Duration                              { return 0 }
func (e *countEnv) SendData(m core.BATMsg)                          { e.lastSent = m }
func (e *countEnv) SendRequest(core.RequestMsg) bool                { return true }
func (e *countEnv) QueueLoad() (int, int)                           { return 0, 1 << 30 }
func (e *countEnv) After(time.Duration, func()) core.TimerHandle    { return nopTimer{} }
func (e *countEnv) Deliver(core.QueryID, core.BATID)                {}
func (e *countEnv) QueryError(core.QueryID, core.BATID, string)     {}
func (e *countEnv) OnLoad(core.BATID, int)                          {}
func (e *countEnv) OnUnload(core.BATID, int)                        {}

type nopTimer struct{}

func (nopTimer) Cancel() {}
