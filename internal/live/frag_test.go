package live

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/bat"
	"repro/internal/mal"
	"repro/internal/minisql"
)

// fragColumns builds a deterministic two-table database big enough to
// split: "big" (rows × int columns) and a small "dim" lookup table that
// stays single-fragment, so fragmented and unfragmented columns mix in
// one plan.
func fragColumns(rows int) (map[string]*bat.BAT, minisql.Schema) {
	rng := rand.New(rand.NewSource(99))
	v := make([]int64, rows)
	k := make([]int64, rows)
	for i := range v {
		v[i] = int64(rng.Intn(10000))
		k[i] = int64(rng.Intn(8))
	}
	cols := map[string]*bat.BAT{
		"big.v":    bat.MakeInts("big.v", v),
		"big.k":    bat.MakeInts("big.k", k),
		"dim.id":   bat.MakeInts("dim.id", []int64{0, 1, 2, 3, 4, 5, 6, 7}),
		"dim.name": bat.MakeStrs("dim.name", []string{"a", "b", "c", "d", "e", "f", "g", "h"}),
	}
	schema := minisql.MapSchema{
		"big": {"v", "k"},
		"dim": {"id", "name"},
	}
	return cols, schema
}

var fragQueries = []string{
	"select sum(v), count(*) from big where v >= 100 and v < 5000",
	"select k, sum(v) from big group by k order by k",
	"select count(*) from big where v = 7",
	"select dim.name, sum(big.v) from big, dim where big.k = dim.id group by dim.name order by dim.name",
}

// resultBytes serializes a result set column-by-column with the wire
// codec, for byte-identical comparisons across rings.
func resultBytes(t *testing.T, rs *mal.ResultSet) []byte {
	t.Helper()
	var buf []byte
	for _, c := range rs.Cols {
		buf = bat.AppendMarshal(buf, c)
	}
	return buf
}

func TestFragmentSpansMath(t *testing.T) {
	if got := fragmentSpans(10, 0); len(got) != 1 || got[0] != [2]int{0, 10} {
		t.Fatalf("off: %v", got)
	}
	if got := fragmentSpans(10, 4); !reflect.DeepEqual(got, [][2]int{{0, 4}, {4, 8}, {8, 10}}) {
		t.Fatalf("spans: %v", got)
	}
	if got := fragmentSpans(0, 4); len(got) != 1 || got[0] != [2]int{0, 0} {
		t.Fatalf("empty: %v", got)
	}
	if got := splitEven(10, 3); !reflect.DeepEqual(got, [][2]int{{0, 3}, {3, 6}, {6, 10}}) {
		t.Fatalf("splitEven: %v", got)
	}
	// FragmentBytes tightens FragmentRows through avg row width.
	b := bat.MakeInts("x", make([]int64, 1000))
	cfg := Config{FragmentRows: 1000, FragmentBytes: 800}
	if rows := fragmentRowsFor(b, cfg); rows >= 1000 || rows < 1 {
		t.Fatalf("byte-bound rows = %d", rows)
	}
}

// TestFragmentedColumnSplits checks the catalog: a long column becomes
// independent fragments, each its own BATID, spread over the nodes.
func TestFragmentedColumnSplits(t *testing.T) {
	cols, schema := fragColumns(3000)
	cfg := DefaultConfig()
	cfg.FragmentRows = 256
	r, err := NewRing(3, cols, schema, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ids, ok := r.Fragments("big.v")
	if !ok {
		t.Fatal("big.v missing from catalog")
	}
	if want := (3000 + 255) / 256; len(ids) != want {
		t.Fatalf("fragments = %d, want %d", len(ids), want)
	}
	seen := map[int]bool{}
	for _, id := range ids {
		owner := r.ownerOf(id)
		if owner == nil {
			t.Fatalf("fragment %d has no owner", id)
		}
		seen[int(owner.ID())] = true
	}
	if len(seen) != 3 {
		t.Fatalf("fragments concentrated on %d of 3 nodes", len(seen))
	}
	// dim stays single-fragment.
	if ids, _ := r.Fragments("dim.id"); len(ids) != 1 {
		t.Fatalf("dim.id fragmented into %d", len(ids))
	}
}

// TestFragmentedQueryMatchesBaseline is the correctness cornerstone:
// every query over a fragmented ring returns byte-identical results to
// the unfragmented baseline.
func TestFragmentedQueryMatchesBaseline(t *testing.T) {
	cols, schema := fragColumns(3000)
	base, err := NewRing(3, cols, schema, func() Config { c := DefaultConfig(); c.FragmentRows = 0; return c }())
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	fragCfg := DefaultConfig()
	fragCfg.FragmentRows = 256
	frag, err := NewRing(3, cols, schema, fragCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer frag.Close()

	for _, q := range fragQueries {
		want, err := base.Node(1).ExecSQL(q)
		if err != nil {
			t.Fatalf("%s (baseline): %v", q, err)
		}
		got, err := frag.Node(1).ExecSQL(q)
		if err != nil {
			t.Fatalf("%s (fragmented): %v", q, err)
		}
		if !bytes.Equal(resultBytes(t, want), resultBytes(t, got)) {
			t.Fatalf("%s: fragmented result differs\nwant %v\ngot  %v", q, want.Rows(), got.Rows())
		}
	}
}

// TestOutOfOrderFragmentArrival shuffles fragment arrival by placing
// fragments at seeded-random ring positions: a fragment's hop distance
// to the querying node dictates when it arrives, so a shuffled
// placement delivers fragments in shuffled order. Results must be
// byte-identical to the unfragmented baseline for every placement.
func TestOutOfOrderFragmentArrival(t *testing.T) {
	cols, schema := fragColumns(2000)
	base, err := NewRing(4, cols, schema, func() Config { c := DefaultConfig(); c.FragmentRows = 0; return c }())
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	baseline := map[string][]byte{}
	for _, q := range fragQueries {
		rs, err := base.Node(0).ExecSQL(q)
		if err != nil {
			t.Fatal(err)
		}
		baseline[q] = resultBytes(t, rs)
	}

	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultConfig()
		cfg.FragmentRows = 128
		cfg.FragWorkers = 3
		// Adverse placements: later fragments often land nearer the
		// querying node than earlier ones, so arrival order inverts and
		// interleaves across queries.
		cfg.placeFragment = func(frag, nodes int) int { return rng.Intn(nodes) }
		r, err := NewRing(4, cols, schema, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ids, _ := r.Fragments("big.v"); len(ids) != (2000+127)/128 {
			r.Close()
			t.Fatalf("seed %d: fragments = %d", seed, len(ids))
		}
		for _, q := range fragQueries {
			rs, err := r.Node(0).ExecSQL(q)
			if err != nil {
				r.Close()
				t.Fatalf("seed %d: %s: %v", seed, q, err)
			}
			if !bytes.Equal(baseline[q], resultBytes(t, rs)) {
				r.Close()
				t.Fatalf("seed %d: %s: result differs from unfragmented baseline", seed, q)
			}
		}
		r.Close()
	}
}

// TestFragmentedRegionSizing: the ring message limit (== RDMA region
// sizing) follows the largest fragment, not the largest column.
func TestFragmentedRegionSizing(t *testing.T) {
	// Batching sizes regions to the batch budget, not the fragment:
	// disable it so the limit under test is the per-fragment one.
	cols, schema := fragColumns(100_000)
	base, err := NewRing(2, cols, schema, func() Config {
		c := DefaultConfig()
		c.FragmentRows = 0
		c.HopBatchBytes = 0
		return c
	}())
	if err != nil {
		t.Fatal(err)
	}
	unfrag := base.MaxMessage()
	base.Close()

	cfg := DefaultConfig()
	cfg.FragmentRows = 8192
	cfg.HopBatchBytes = 0
	r, err := NewRing(2, cols, schema, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	frag := r.MaxMessage()
	if frag*8 > unfrag {
		t.Fatalf("region sizing: fragmented limit %d not ≥8× below unfragmented %d", frag, unfrag)
	}
}

// TestFragmentedMaxHopBytes: circulating fragments keeps the largest
// single ring message ≥8× below the unfragmented column rotation.
func TestFragmentedMaxHopBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("moves ~MBs around the ring")
	}
	cols, schema := fragColumns(100_000)
	run := func(fragRows int) (int64, *mal.ResultSet) {
		cfg := DefaultConfig()
		cfg.FragmentRows = fragRows
		// This test measures circulating message sizes: disable the
		// hot-set cache so every pin drives circulation (with it on, a
		// pin of locally owned or cached fragments moves no data at all
		// and there may be nothing to measure), and disable hop batching,
		// which would coalesce the small fragments back into large
		// messages — the property under test is fragment granularity.
		cfg.CacheBytes = 0
		cfg.HopBatchBytes = 0
		r, err := NewRing(3, cols, schema, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		rs, err := r.Node(1).ExecSQL(fragQueries[0])
		if err != nil {
			t.Fatal(err)
		}
		// Sends are asynchronous; wait for the hot set to start rotating.
		deadline := time.Now().Add(5 * time.Second)
		for r.MaxHopBytes() == 0 && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		if r.MaxHopBytes() == 0 {
			t.Fatal("no data hops recorded")
		}
		return r.MaxHopBytes(), rs
	}
	bigHop, want := run(0)
	smallHop, got := run(8192)
	if smallHop*8 > bigHop {
		t.Fatalf("max hop bytes %d (fragmented) vs %d (unfragmented): want ≥8× reduction", smallHop, bigHop)
	}
	if !bytes.Equal(resultBytes(t, want), resultBytes(t, got)) {
		t.Fatal("fragmented result differs")
	}
}

// TestFetchFragmented: Fetch reassembles a fragmented column through
// the ring, equal to the registered data.
func TestFetchFragmented(t *testing.T) {
	cols, schema := fragColumns(2000)
	cfg := DefaultConfig()
	cfg.FragmentRows = 256
	r, err := NewRing(3, cols, schema, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := r.Node(2).Fetch("big.v")
	if err != nil {
		t.Fatal(err)
	}
	want := cols["big.v"]
	if !bytes.Equal(bat.AppendMarshal(nil, want), bat.AppendMarshal(nil, got)) {
		t.Fatalf("fetched column differs: %s vs %s", got, want)
	}
}

// TestUpdateFragmentedColumn: updates re-divide the new version over
// the stable fragment set, bump every fragment's version together, and
// readers eventually see the new data everywhere.
func TestUpdateFragmentedColumn(t *testing.T) {
	cols, schema := fragColumns(2000)
	cfg := DefaultConfig()
	cfg.FragmentRows = 256
	// Aggressive eviction so re-fetches reload from the owners' stores.
	cfg.Core.LOITLevels = []float64{10}
	cfg.Core.AdaptiveLOIT = false
	r, err := NewRing(3, cols, schema, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	var wantSum int64
	for i := 0; i < cols["big.v"].Len(); i++ {
		wantSum += cols["big.v"].Tail().Int(i) * 2
	}
	v, err := r.UpdateColumn("big.v", func(old *bat.BAT) *bat.BAT {
		if old.Len() != 2000 {
			t.Errorf("update saw %d rows, want the merged column", old.Len())
		}
		vals := make([]int64, old.Len())
		for i := range vals {
			vals[i] = old.Tail().Int(i) * 2
		}
		return bat.MakeInts("big.v", vals)
	})
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("version = %d, want 1", v)
	}
	if rv, _ := r.Version("big.v"); rv != 1 {
		t.Fatalf("Version = %d, want 1", rv)
	}
	got, err := r.Node(1).Fetch("big.v")
	if err != nil {
		t.Fatal(err)
	}
	var gotSum int64
	for i := 0; i < got.Len(); i++ {
		gotSum += got.Tail().Int(i)
	}
	if gotSum != wantSum {
		t.Fatalf("sum after update = %d, want %d", gotSum, wantSum)
	}
}

// TestDeliverWithoutWaiterCountsNoRef is the regression test for the
// abandoned-pin leak: a delivery that finds no waiter (the pin was
// abandoned between abandonPin and CancelQuery) must not count a
// cached-payload reference nobody will release — pinParts aborts every
// remaining fragment on first failure, so this race is routine with
// fragmentation on.
func TestDeliverWithoutWaiterCountsNoRef(t *testing.T) {
	cols, schema := fragColumns(100)
	r, err := NewRing(2, cols, schema, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	n := r.Node(0)
	payload := bat.MakeInts("stray", []int64{1, 2, 3})
	n.mu.Lock()
	n.transit[999] = payload
	(*liveEnv)(n).Deliver(7, 999) // no waiter registered for (7, 999)
	delete(n.transit, 999)
	leaked := len(n.cached)
	n.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("waiterless delivery pinned %d payloads forever", leaked)
	}
}

// TestFragmentedConcurrentQueries hammers a fragmented ring from every
// node at once; -race covers the pin pool and the shared catalog.
func TestFragmentedConcurrentQueries(t *testing.T) {
	cols, schema := fragColumns(1500)
	cfg := DefaultConfig()
	cfg.FragmentRows = 200
	r, err := NewRing(3, cols, schema, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	want, err := r.Node(0).ExecSQL(fragQueries[0])
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := resultBytes(t, want)
	errs := make(chan error, 12)
	for i := 0; i < 12; i++ {
		go func(node int) {
			rs, err := r.Node(node).ExecSQL(fragQueries[0])
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(wantBytes, resultBytes(t, rs)) {
				errs <- fmt.Errorf("node %d: result differs", node)
				return
			}
			errs <- nil
		}(i % 3)
	}
	for i := 0; i < 12; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
