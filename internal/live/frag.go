package live

// Horizontal fragmentation: every registered column is split into
// bounded-size fragments that circulate, are requested, and are
// admitted/evicted independently — the fragment granularity the paper
// sweeps in §5. The unit of circulation (and of RDMA region sizing) is
// the largest *fragment*, not the largest column, so a 1M-row column
// rotates as a train of small messages instead of one giant one, and a
// pin can start working as soon as the first fragment flows past.
//
// The catalog maps a column name to its ordered fragment ids. Fragment
// heads are Slice views of the logical column, so their dense OID bases
// carry the global row offsets: per-fragment scan results concatenate
// (bat.Concat) back into exactly the whole-column result, whatever
// order the fragments arrived in.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/bat"
	"repro/internal/core"
	"repro/internal/mal"
)

// colFrags is one column's catalog entry: its fragment ids in fragment
// order.
type colFrags struct {
	ids []core.BATID
}

// fragHandle is the request handle for a multi-fragment column: what
// datacyclotron.request returns and pin/pinselect consume.
type fragHandle struct {
	name string
	ids  []core.BATID
}

// fragmentRowsFor resolves the effective per-fragment row bound for one
// column: FragmentRows, tightened by FragmentBytes through the column's
// average encoded bytes per row. 0 means "do not split".
func fragmentRowsFor(b *bat.BAT, cfg Config) int {
	rows := cfg.FragmentRows
	if n := b.Len(); cfg.FragmentBytes > 0 && n > 0 {
		perRow := (bat.MarshalSize(b) + n - 1) / n
		byBytes := cfg.FragmentBytes / perRow
		if byBytes < 1 {
			byBytes = 1
		}
		if rows == 0 || byBytes < rows {
			rows = byBytes
		}
	}
	return rows
}

// fragmentSpans cuts [0, n) into row ranges of at most rows each
// (one span covering everything when rows <= 0).
func fragmentSpans(n, rows int) [][2]int {
	if rows <= 0 || n <= rows {
		return [][2]int{{0, n}}
	}
	spans := make([][2]int, 0, (n+rows-1)/rows)
	for from := 0; from < n; from += rows {
		to := from + rows
		if to > n {
			to = n
		}
		spans = append(spans, [2]int{from, to})
	}
	return spans
}

// splitEven cuts n rows into exactly k contiguous spans of near-equal
// size (fragment identity is stable across updates, so a new column
// version re-divides over the existing fragment count).
func splitEven(n, k int) [][2]int {
	spans := make([][2]int, k)
	for i := 0; i < k; i++ {
		spans[i] = [2]int{i * n / k, (i + 1) * n / k}
	}
	return spans
}

// Fragments lists the fragment ids of a column, in fragment order.
func (r *Ring) Fragments(name string) ([]core.BATID, bool) {
	r.idsMu.RLock()
	defer r.idsMu.RUnlock()
	cf, ok := r.cols[name]
	if !ok {
		return nil, false
	}
	return append([]core.BATID(nil), cf.ids...), true
}

// MaxMessage reports the ring's data message limit — what every RDMA
// memory region is sized to. With fragmentation on, it is keyed to the
// largest fragment rather than the largest column.
func (r *Ring) MaxMessage() int { return r.nodes[0].dataOut.MaxMessage() }

// MaxHopBytes reports the largest single data message any node has put
// on the ring so far.
func (r *Ring) MaxHopBytes() int64 {
	var max int64
	for _, n := range r.nodes {
		if v := atomic.LoadInt64(&n.maxHopBytes); v > max {
			max = v
		}
	}
	return max
}

// HopBytes reports the total data bytes sent over all ring hops.
func (r *Ring) HopBytes() int64 {
	var total int64
	for _, n := range r.nodes {
		total += atomic.LoadInt64(&n.hopBytes)
	}
	return total
}

// ---------------------------------------------------------------------
// out-of-order fragment pinning
// ---------------------------------------------------------------------

// PinMap implements mal.FragmentedDC: it pins the fragments behind
// handle as they arrive — in whatever order the ring delivers them —
// applies fn to each pinned fragment on a bounded worker pool, unpins
// the fragment as soon as its work is done, and returns the results in
// fragment order (the order-preserving merge point).
func (d *queryDC) PinMap(handle mal.Value, fn func(mal.Value) (mal.Value, error)) ([]mal.Value, error) {
	switch h := handle.(type) {
	case core.BATID:
		v, err := d.Pin(h)
		if err != nil {
			return nil, err
		}
		out, err := fn(v)
		if err != nil {
			d.Unpin(v)
			return nil, err
		}
		if err := d.Unpin(v); err != nil {
			return nil, err
		}
		return []mal.Value{out}, nil
	case *fragHandle:
		return d.pinParts(h.ids, fn)
	}
	return nil, fmt.Errorf("live: bad pin handle %T", handle)
}

// pinParts registers a blocked pin per fragment and collects them as
// deliveries land. One lightweight goroutine per fragment waits on its
// delivery channel (arrival order is the ring's business, not ours);
// the per-fragment work is throttled by a semaphore of FragWorkers
// tokens. Each fragment is unpinned right after its work completes —
// the merged result owns its own memory (or immutable views), so no pin
// needs to outlive the merge. The first failure aborts the remaining
// waits and unwinds their pins.
func (d *queryDC) pinParts(ids []core.BATID, fn func(mal.Value) (mal.Value, error)) ([]mal.Value, error) {
	n := d.n
	workers := n.cfg.FragWorkers
	if workers <= 0 {
		workers = n.cfg.Workers
	}
	if workers <= 0 {
		workers = 1
	}

	chans := make([]chan *bat.BAT, len(ids))
	n.mu.Lock()
	for i, id := range ids {
		ch := make(chan *bat.BAT, 1)
		chans[i] = ch
		n.waiters[waitKey{d.q, id}] = ch
		n.rt.Pin(d.q, id)
	}
	n.mu.Unlock()

	results := make([]mal.Value, len(ids))
	sem := make(chan struct{}, workers)
	abort := make(chan struct{})
	var abortOnce sync.Once
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		abortOnce.Do(func() { close(abort) })
	}

	var wg sync.WaitGroup
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, ch := ids[i], chans[i]
			var b *bat.BAT
			select {
			case b = <-ch:
			case <-d.cancel: // nil for uncancellable callers
				d.abandonPin(id, ch)
				fail(mal.ErrCancelled)
				return
			case <-n.closed:
				d.abandonPin(id, ch)
				fail(fmt.Errorf("live: ring closed"))
				return
			case <-abort:
				d.abandonPin(id, ch)
				return
			}
			if b == nil {
				fail(fmt.Errorf("live: BAT %d does not exist", id))
				return
			}
			sem <- struct{}{}
			v, err := fn(b)
			<-sem
			n.mu.Lock()
			n.rt.Unpin(d.q, id)
			n.unrefCached(id)
			n.mu.Unlock()
			if err != nil {
				fail(err)
				return
			}
			results[i] = v
		}(i)
	}
	wg.Wait()
	errMu.Lock()
	err := firstErr
	errMu.Unlock()
	if err != nil {
		return nil, err
	}
	return results, nil
}

// pinMerged pins every fragment of h (out of order) and concatenates
// the payloads in fragment order. The fragments are unpinned during the
// merge; the caller's later unpin of the merged value is a no-op,
// tracked through d.merged.
func (d *queryDC) pinMerged(h *fragHandle) (*bat.BAT, error) {
	parts, err := d.pinParts(h.ids, func(v mal.Value) (mal.Value, error) { return v, nil })
	if err != nil {
		return nil, err
	}
	frags := make([]*bat.BAT, len(parts))
	for i, p := range parts {
		frags[i] = p.(*bat.BAT)
	}
	merged := bat.Concat(frags)
	d.mu.Lock()
	if d.merged == nil {
		d.merged = map[*bat.BAT]bool{}
	}
	d.merged[merged] = true
	d.mu.Unlock()
	return merged, nil
}
