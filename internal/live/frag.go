package live

// Horizontal fragmentation: every registered column is split into
// bounded-size fragments that circulate, are requested, and are
// admitted/evicted independently — the fragment granularity the paper
// sweeps in §5. The unit of circulation (and of RDMA region sizing) is
// the largest *fragment*, not the largest column, so a 1M-row column
// rotates as a train of small messages instead of one giant one, and a
// pin can start working as soon as the first fragment flows past.
//
// The catalog maps a column name to its ordered fragment ids. Fragment
// heads are Slice views of the logical column, so their dense OID bases
// carry the global row offsets: per-fragment scan results concatenate
// (bat.Concat) back into exactly the whole-column result, whatever
// order the fragments arrived in.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bat"
	"repro/internal/core"
	"repro/internal/mal"
)

// colFrags is one column's catalog entry: its fragment ids in fragment
// order.
type colFrags struct {
	ids []core.BATID
}

// fragHandle is the request handle for a multi-fragment column: what
// datacyclotron.request returns and pin/pinselect consume.
type fragHandle struct {
	name string
	ids  []core.BATID
}

// fragmentRowsFor resolves the effective per-fragment row bound for one
// column: FragmentRows, tightened by FragmentBytes through the column's
// average encoded bytes per row. 0 means "do not split".
func fragmentRowsFor(b *bat.BAT, cfg Config) int {
	rows := cfg.FragmentRows
	if n := b.Len(); cfg.FragmentBytes > 0 && n > 0 {
		perRow := (bat.MarshalSize(b) + n - 1) / n
		byBytes := cfg.FragmentBytes / perRow
		if byBytes < 1 {
			byBytes = 1
		}
		if rows == 0 || byBytes < rows {
			rows = byBytes
		}
	}
	return rows
}

// fragmentSpans cuts [0, n) into row ranges of at most rows each
// (one span covering everything when rows <= 0).
func fragmentSpans(n, rows int) [][2]int {
	if rows <= 0 || n <= rows {
		return [][2]int{{0, n}}
	}
	spans := make([][2]int, 0, (n+rows-1)/rows)
	for from := 0; from < n; from += rows {
		to := from + rows
		if to > n {
			to = n
		}
		spans = append(spans, [2]int{from, to})
	}
	return spans
}

// splitEven cuts n rows into exactly k contiguous spans of near-equal
// size (fragment identity is stable across updates, so a new column
// version re-divides over the existing fragment count).
func splitEven(n, k int) [][2]int {
	spans := make([][2]int, k)
	for i := 0; i < k; i++ {
		spans[i] = [2]int{i * n / k, (i + 1) * n / k}
	}
	return spans
}

// Fragments lists the fragment ids of a column, in fragment order.
func (r *Ring) Fragments(name string) ([]core.BATID, bool) {
	r.idsMu.RLock()
	defer r.idsMu.RUnlock()
	cf, ok := r.cols[name]
	if !ok {
		return nil, false
	}
	return append([]core.BATID(nil), cf.ids...), true
}

// fragVersion reports the catalog's current version of one fragment
// (0 for base data and for ids the catalog does not know). Lock-free
// beyond the catalog-map read: the pin fast path calls this on every
// cache validation.
func (r *Ring) fragVersion(id core.BATID) int {
	r.idsMu.RLock()
	p := r.fragVer[id]
	r.idsMu.RUnlock()
	if p == nil {
		return 0
	}
	return int(p.Load())
}

// fragKnown reports whether id is a published fragment in the ring
// catalog — the authority consulted before a full-circle request is
// allowed to conclude "BAT does not exist".
func (r *Ring) fragKnown(id core.BATID) bool {
	r.idsMu.RLock()
	_, ok := r.fragVer[id]
	r.idsMu.RUnlock()
	return ok
}

// MaxMessage reports the ring's data message limit — what every RDMA
// memory region is sized to. With fragmentation on, it is keyed to the
// largest fragment rather than the largest column.
func (r *Ring) MaxMessage() int { return r.maxMsgBytes }

// MaxHopBytes reports the largest single data message any node has put
// on the ring so far.
func (r *Ring) MaxHopBytes() int64 {
	var max int64
	for _, n := range r.nodeList() {
		if v := atomic.LoadInt64(&n.maxHopBytes); v > max {
			max = v
		}
	}
	return max
}

// HopBytes reports the total data bytes sent over all ring hops.
func (r *Ring) HopBytes() int64 {
	var total int64
	for _, n := range r.nodeList() {
		total += atomic.LoadInt64(&n.hopBytes)
	}
	return total
}

// ---------------------------------------------------------------------
// fragment acquisition: cache hit, coalesced wait, or ring circulation
// ---------------------------------------------------------------------

// errPinAborted marks a pin abandoned because a sibling fragment of the
// same multi-fragment pin already failed; it never surfaces to callers.
var errPinAborted = errors.New("live: pin aborted")

// maxSnapshotRetries bounds how often a multi-fragment pin re-acquires
// fragments whose versions straddled a concurrent UpdateColumn. Each
// round needs a fresh update to land mid-collection, so the bound only
// trips under pathological sustained update pressure.
const maxSnapshotRetries = 64

// acquireFrag resolves one fragment payload for pinning, in order of
// preference:
//
//  1. hot-set cache hit, version-validated against the ring catalog at
//     this instant: a node-local read — no waiter, no ring wait. The
//     pin's interest is fed back into the LOI accounting (NoteLocalHit)
//     and any outstanding ring interest of this query is withdrawn.
//  2. an in-flight wait for the same (id, version) by another local pin:
//     join it instead of registering a second waiter (singleflight).
//  3. the ring: register a waiter, announce the pin to the runtime, and
//     block until the fragment flows past (the pre-cache path; the only
//     path when the cache is disabled).
//
// viaRing reports whether the acquisition holds runtime refs (a pin and
// a refcounted payload) the caller must release after use; node-local
// acquisitions hold none — the payloads are immutable and GC-owned.
// abort (nil for single pins) abandons the wait with errPinAborted.
func (d *queryDC) acquireFrag(id core.BATID, abort <-chan struct{}) (b *bat.BAT, ver int, viaRing bool, err error) {
	n := d.n
	remote := false
	if rtr := n.ring.router; rtr != nil {
		// Routed runtime: resolve the fragment's home ring at pin time,
		// holding the access counter for the duration of the
		// acquisition — a cross-ring migration drains on that counter
		// before the source copy is released, so a pin dispatched here
		// always finds a serving owner on the ring it resolved to.
		home, release := rtr.beginAccess(id)
		defer release()
		remote = home != n.ring.id
	}
	if n.hot != nil && !remote {
		// Fragments this node owns are served synchronously from the
		// store: no cache entry exists for them (dataLoop skips own
		// fragments), so consulting the cache would only count a miss
		// that never involved the ring, and a flight would dedupe waits
		// that do not wait.
		n.mu.Lock()
		owned := n.rt.Owns(id)
		n.mu.Unlock()
		if owned {
			b, ver, err = d.ringPin(id, abort, 0)
			return b, ver, true, err
		}
	}
	for {
		if n.hot == nil {
			if n.ring.router == nil {
				b, ver, err = d.ringPin(id, abort, 0)
				return b, ver, true, err
			}
			// Cache-less node on a routed ring: the circulation path can
			// hand back a stale orbit copy (Deliver serves transit and
			// cached payloads without a version guard), so validate
			// against the catalog and retry until the owner's refresh
			// pass catches the orbit up — the same stale-version chase
			// as the cached leader paths below.
			cur := n.ring.fragVersion(id)
			if remote || n.ring.router.homeOf(id) != n.ring.id {
				// Either the access resolved to another ring, or the
				// fragment migrated away while an earlier round of this
				// loop was waiting — re-resolving every round keeps the
				// acquisition chasing the fragment's current home
				// instead of a ring it has left.
				b, ver, err = d.remotePin(id, abort)
				if err == nil && ver < cur {
					continue
				}
				return b, ver, false, err
			}
			b, ver, err = d.ringPin(id, abort, routedRingWait)
			if err == nil && ver >= cur {
				return b, ver, true, nil
			}
			if err == nil {
				// Stale orbit copy: drop the pin before falling back.
				n.mu.Lock()
				n.rt.Unpin(d.q, id)
				n.mu.Unlock()
			} else if err != errRingWaitTimeout {
				return nil, 0, false, err
			}
			// A parked orbit copy refreshes only when a pass takes it
			// through the owner, so chasing the ring again may never
			// terminate — and a migration race can wedge the request
			// entirely. Take the bytes from the owner's store instead:
			// versions advance under the owner lock, so the store is
			// catalog-current by construction.
			if ob, over, ok := ownerStoreRead(n.ring, id); ok && over >= cur {
				return ob, over, false, nil
			}
			continue
		}
		cur := n.ring.fragVersion(id)
		if b := n.hot.get(id, cur); b != nil {
			n.mu.Lock()
			n.rt.NoteLocalHit(id)
			// Withdraw any ring interest this query still has in id: the
			// pin is served locally, so nothing will ever mark the
			// runtime's request delivered and its resend timer would
			// re-request a fragment nobody is waiting for.
			n.rt.CancelQuery(d.q, []core.BATID{id})
			n.mu.Unlock()
			return b, cur, false, nil
		}
		fl, leader := n.hot.joinFlight(id, cur)
		if leader {
			if remote {
				// Cross-ring acquisition through the same singleflight:
				// concurrent pins of one cold fragment share a single
				// delegate dispatch, and the result seeds the local
				// cache so repeat pins stay node-local until the
				// version moves.
				b, ver, err = d.remotePin(id, abort)
				if err != nil {
					n.hot.finishFlight(id, cur, fl, nil, 0)
					return nil, 0, false, err
				}
				if ver < cur {
					// Stale orbit copy on the home ring: the catalog
					// advanced before the pin, so this payload predates
					// what the caller is entitled to. Retry — the home
					// owner's next pass refreshes the orbit from its
					// store (see SendData), bounding the chase to one
					// revolution.
					n.hot.finishFlight(id, cur, fl, nil, 0)
					continue
				}
				n.hot.finishFlight(id, cur, fl, b, ver)
				n.hot.put(id, ver, b)
				return b, ver, false, nil
			}
			b, ver, err = d.ringPin(id, abort, 0)
			if err != nil {
				n.hot.finishFlight(id, cur, fl, nil, 0)
				return nil, 0, false, err
			}
			if n.ring.router != nil && ver < cur {
				// Same stale-version retry as the remote path. Gated on
				// routed mode so a standalone ring keeps its original
				// behavior unchanged (a stale orbit copy may serve one
				// last pin while the owner pass refreshes it).
				n.mu.Lock()
				n.rt.Unpin(d.q, id)
				n.mu.Unlock()
				n.hot.finishFlight(id, cur, fl, nil, 0)
				continue
			}
			n.hot.finishFlight(id, cur, fl, b, ver)
			return b, ver, true, nil
		}
		select {
		case <-fl.done:
		case <-d.cancel: // nil for uncancellable callers
			return nil, 0, false, mal.ErrCancelled
		case <-n.closed:
			return nil, 0, false, errors.New("live: ring closed")
		case <-abort: // nil outside multi-fragment pins
			return nil, 0, false, errPinAborted
		}
		if fl.b != nil {
			n.mu.Lock()
			n.rt.CancelQuery(d.q, []core.BATID{id})
			n.mu.Unlock()
			return fl.b, fl.ver, false, nil
		}
		// The leader failed at the protocol layer; retry — the next
		// round either hits the cache, joins a newer flight, or makes
		// this pin the leader so the failure surfaces here too.
	}
}

// ownerStoreRead reads a fragment straight from its owner's store on
// ring r — the stale-orbit fallback for cache-less routed rings. The
// returned BAT is immutable and GC-owned; the caller holds no runtime
// refs on it.
func ownerStoreRead(r *Ring, id core.BATID) (*bat.BAT, int, bool) {
	owner := r.ownerOf(id)
	if owner == nil {
		return nil, 0, false
	}
	owner.mu.Lock()
	b := owner.store[id]
	ver := owner.versions[id]
	owner.mu.Unlock()
	if b == nil {
		return nil, 0, false
	}
	return b, ver, true
}

// routedRingWait bounds a circulation wait on a routed cache-less
// ring: long enough to cover several cold revolutions, short enough
// that a pin wedged by a migration race (the fragment left the ring,
// or its orbit copy died without reaching us) falls back to the owner
// store promptly.
const routedRingWait = 250 * time.Millisecond

// errRingWaitTimeout marks a bounded ring wait that expired; it never
// surfaces to callers — acquireFrag falls back or retries.
var errRingWaitTimeout = errors.New("live: ring wait timed out")

// ringPin is the circulation path: register a waiter, announce the pin,
// and block until delivery. Only time actually spent blocked counts as
// ring wait — a synchronous delivery (owner store, or a payload another
// local pin already holds) involves no circulation and no wait. A
// non-zero timeout bounds the blocked wait (routed rings only): on
// expiry the pin is abandoned and errRingWaitTimeout returned.
func (d *queryDC) ringPin(id core.BATID, abort <-chan struct{}, timeout time.Duration) (*bat.BAT, int, error) {
	n := d.n
	ch := make(chan delivered, 1)
	n.mu.Lock()
	n.waiters[waitKey{d.q, id}] = ch
	n.rt.Pin(d.q, id)
	n.mu.Unlock()
	select {
	case dv := <-ch: // delivered synchronously: not a ring wait
		if dv.b == nil {
			return nil, 0, fmt.Errorf("live: BAT %d does not exist", id)
		}
		return dv.b, dv.ver, nil
	default:
	}
	var expired <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		expired = timer.C
	}
	start := time.Now()
	select {
	case dv := <-ch:
		atomic.AddInt64(&n.ringWaits, 1)
		atomic.AddInt64(&n.ringWaitNanos, time.Since(start).Nanoseconds())
		if dv.b == nil {
			return nil, 0, fmt.Errorf("live: BAT %d does not exist", id)
		}
		return dv.b, dv.ver, nil
	case <-expired: // nil without a timeout: blocks forever
		d.abandonPin(id, ch)
		return nil, 0, errRingWaitTimeout
	case <-d.cancel: // nil for uncancellable callers: blocks forever
		d.abandonPin(id, ch)
		return nil, 0, mal.ErrCancelled
	case <-n.closed:
		d.abandonPin(id, ch)
		return nil, 0, errors.New("live: ring closed")
	case <-abort: // nil outside multi-fragment pins
		d.abandonPin(id, ch)
		return nil, 0, errPinAborted
	}
}

// remotePin acquires a fragment homed on another ring: the router
// dispatches the pin to a delegate node on the home ring, which runs
// the real circulation machinery there (request, waiter, ring wait) and
// hands back the payload with its version label. The origin node holds
// no runtime refs on the result — like a cache hit, the payload is an
// immutable GC-owned view — and any ring interest this query announced
// locally (before the fragment migrated away) is withdrawn so its
// resend timer dies.
func (d *queryDC) remotePin(id core.BATID, abort <-chan struct{}) (*bat.BAT, int, error) {
	n := d.n
	rtr := n.ring.router
	if rtr == nil {
		return nil, 0, fmt.Errorf("live: remote pin of %d without a router", id)
	}
	b, ver, err := rtr.fetchRemote(id, d.cancel, abort)
	if err != nil {
		return nil, 0, err
	}
	n.mu.Lock()
	n.rt.CancelQuery(d.q, []core.BATID{id})
	n.mu.Unlock()
	return b, ver, nil
}

// ---------------------------------------------------------------------
// out-of-order fragment pinning
// ---------------------------------------------------------------------

// PinMap implements mal.FragmentedDC: it pins the fragments behind
// handle as they arrive — in whatever order the ring delivers them —
// applies fn to each pinned fragment on a bounded worker pool, unpins
// the fragment as soon as its work is done, and returns the results in
// fragment order (the order-preserving merge point).
func (d *queryDC) PinMap(handle mal.Value, fn func(mal.Value) (mal.Value, error)) ([]mal.Value, error) {
	switch h := handle.(type) {
	case core.BATID:
		v, err := d.Pin(h)
		if err != nil {
			return nil, err
		}
		out, err := fn(v)
		if err != nil {
			d.Unpin(v)
			return nil, err
		}
		if err := d.Unpin(v); err != nil {
			return nil, err
		}
		return []mal.Value{out}, nil
	case *fragHandle:
		return d.pinParts(h.ids, fn)
	}
	return nil, fmt.Errorf("live: bad pin handle %T", handle)
}

// pinParts acquires every fragment (cache, coalesced, or ring — in
// whatever order they become available), applies fn to each on a
// bounded worker pool, and returns the results in fragment order.
// With the hot-set cache enabled the collected set is additionally
// reconciled to a single column version: a concurrent UpdateColumn can
// land mid-collection, and a merged result must never mix old and new
// fragment versions.
func (d *queryDC) pinParts(ids []core.BATID, fn func(mal.Value) (mal.Value, error)) ([]mal.Value, error) {
	results, vers, err := d.collectFrags(ids, fn)
	if err != nil {
		return nil, err
	}
	// A routed runtime can straddle a version even without the cache:
	// one fragment of a column may be acquired through its old home
	// while a sibling is already served post-update elsewhere, so the
	// snapshot reconciliation guards multi-ring merges too — a merged
	// result never mixes versions, whichever tier each part came from.
	if (d.n.hot != nil || d.n.ring.router != nil) && len(ids) > 1 {
		if err := d.reconcileVersions(ids, fn, results, vers); err != nil {
			return nil, err
		}
	}
	return results, nil
}

// collectFrags runs the parallel acquire/apply/release pass of
// pinParts. One lightweight goroutine per fragment blocks on its
// acquisition (arrival order is the ring's business, not ours); the
// per-fragment work is throttled by a semaphore of FragWorkers tokens,
// and ring-held fragments are unpinned right after their work completes
// — the merged result owns its own memory (or immutable views), so no
// pin needs to outlive the merge. The first failure aborts the
// remaining waits and unwinds their pins.
func (d *queryDC) collectFrags(ids []core.BATID, fn func(mal.Value) (mal.Value, error)) ([]mal.Value, []int, error) {
	n := d.n
	workers := n.cfg.FragWorkers
	if workers <= 0 {
		workers = n.cfg.Workers
	}
	if workers <= 0 {
		workers = 1
	}

	results := make([]mal.Value, len(ids))
	vers := make([]int, len(ids))
	sem := make(chan struct{}, workers)
	abort := make(chan struct{})
	var abortOnce sync.Once
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		abortOnce.Do(func() { close(abort) })
	}

	var wg sync.WaitGroup
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := ids[i]
			b, ver, viaRing, err := d.acquireFrag(id, abort)
			if err != nil {
				if !errors.Is(err, errPinAborted) {
					fail(err)
				}
				return
			}
			sem <- struct{}{}
			v, err := fn(b)
			<-sem
			if viaRing {
				n.mu.Lock()
				n.rt.Unpin(d.q, id)
				n.unrefCached(id)
				n.mu.Unlock()
			}
			if err != nil {
				fail(err)
				return
			}
			results[i] = v
			vers[i] = ver
		}(i)
	}
	wg.Wait()
	errMu.Lock()
	err := firstErr
	errMu.Unlock()
	if err != nil {
		return nil, nil, err
	}
	return results, vers, nil
}

// reconcileVersions enforces the single-version snapshot contract of a
// multi-fragment pin: if the collected fragments straddle a concurrent
// UpdateColumn (updates bump every fragment of a column together, so a
// consistent collection has one version throughout), the fragments on
// the older side are re-acquired and fn re-applied until the set
// agrees. Readers that collected entirely before the update keep their
// old version (MVCC: the update does not invalidate a snapshot already
// taken, it only forbids mixing).
func (d *queryDC) reconcileVersions(ids []core.BATID, fn func(mal.Value) (mal.Value, error), results []mal.Value, vers []int) error {
	for attempt := 0; ; attempt++ {
		target := vers[0]
		for _, v := range vers[1:] {
			if v > target {
				target = v
			}
		}
		consistent := true
		for _, v := range vers {
			if v != target {
				consistent = false
				break
			}
		}
		if consistent {
			return nil
		}
		if attempt >= maxSnapshotRetries {
			return fmt.Errorf("live: no consistent snapshot after %d retries (sustained concurrent updates)", attempt)
		}
		// Re-acquire the stale side in parallel through the same
		// machinery as the first pass: each re-acquire can block a ring
		// circulation, so serializing them would multiply tail latency
		// by the number of straddled fragments.
		var staleIdx []int
		staleIds := make([]core.BATID, 0, len(ids))
		for i, v := range vers {
			if v != target {
				staleIdx = append(staleIdx, i)
				staleIds = append(staleIds, ids[i])
			}
		}
		subResults, subVers, err := d.collectFrags(staleIds, fn)
		if err != nil {
			return err
		}
		for j, i := range staleIdx {
			results[i] = subResults[j]
			vers[i] = subVers[j]
		}
	}
}

// pinMerged pins every fragment of h (out of order) and concatenates
// the payloads in fragment order — a single-version snapshot of the
// column when the hot-set cache is enabled. The fragments are unpinned
// during the merge; the caller's later unpin of the merged value is a
// no-op, tracked through d.merged.
func (d *queryDC) pinMerged(h *fragHandle) (*bat.BAT, error) {
	parts, err := d.pinParts(h.ids, func(v mal.Value) (mal.Value, error) { return v, nil })
	if err != nil {
		return nil, err
	}
	frags := make([]*bat.BAT, len(parts))
	for i, p := range parts {
		frags[i] = p.(*bat.BAT)
	}
	merged := bat.Concat(frags)
	d.mu.Lock()
	if d.merged == nil {
		d.merged = map[*bat.BAT]bool{}
	}
	d.merged[merged] = true
	d.mu.Unlock()
	return merged, nil
}
