package live

// Elastic ring membership: the live-ring half of internal/membership.
// Each node multiplexes small heartbeat pulses onto its outbound data
// link (beatLoop) and times out its current predecessor (the node whose
// pulses it should be seeing). A death verdict — reached locally by
// timeout or learned from a gossiped view — triggers failover: the dead
// node is cut off, every survivor's view is updated, the ring links are
// spliced around the hole, and the dead node's fragments are re-owned
// from their replicas with the version catalog intact. All of it is
// nil-gated on Config.Replicas, exactly like the hot cache and the hop
// scheduler: Replicas=0 leaves the single-owner ring byte-identical.
//
// Lock order: r.failMu > column locks > node mu; r.memMu is leaf-like —
// it is never acquired while holding a node's mu, and no node mu is
// acquired while holding it.

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bat"
	"repro/internal/core"
	"repro/internal/rdma"
)

// replicaFrag is one replica copy held at a successor of the owner:
// the payload at its catalog version, plus the last level of interest
// seen on the circulating original (what a promotion re-admits with).
type replicaFrag struct {
	b   *bat.BAT
	ver int
	loi float64
}

// ---------------------------------------------------------------------
// link accessors (the pointers are swapped by splice at runtime)
// ---------------------------------------------------------------------

func (n *Node) linkDataOut() *rdma.Messenger {
	n.linkMu.RLock()
	defer n.linkMu.RUnlock()
	return n.dataOut
}

func (n *Node) linkDataIn() *rdma.Messenger {
	n.linkMu.RLock()
	defer n.linkMu.RUnlock()
	return n.dataIn
}

func (n *Node) linkReqOut() *rdma.Messenger {
	n.linkMu.RLock()
	defer n.linkMu.RUnlock()
	return n.reqOut
}

func (n *Node) linkReqIn() *rdma.Messenger {
	n.linkMu.RLock()
	defer n.linkMu.RUnlock()
	return n.reqIn
}

func (n *Node) swapDataOut(m *rdma.Messenger) *rdma.Messenger {
	n.linkMu.Lock()
	defer n.linkMu.Unlock()
	old := n.dataOut
	n.dataOut = m
	return old
}

func (n *Node) swapDataIn(m *rdma.Messenger) *rdma.Messenger {
	n.linkMu.Lock()
	defer n.linkMu.Unlock()
	old := n.dataIn
	n.dataIn = m
	return old
}

func (n *Node) swapReqOut(m *rdma.Messenger) *rdma.Messenger {
	n.linkMu.Lock()
	defer n.linkMu.Unlock()
	old := n.reqOut
	n.reqOut = m
	return old
}

func (n *Node) swapReqIn(m *rdma.Messenger) *rdma.Messenger {
	n.linkMu.Lock()
	defer n.linkMu.Unlock()
	old := n.reqIn
	n.reqIn = m
	return old
}

// ---------------------------------------------------------------------
// heartbeats
// ---------------------------------------------------------------------

// beatLoop sends one heartbeat pulse per interval to the ring successor
// over the data link and drives the failure detector's timeout clock.
// The pulse is sent non-blocking (TrySendEncoded): liveness traffic
// must never queue behind bulk data, and a dropped pulse is harmless —
// the detector tolerates SuspectAfter missed intervals by design.
func (n *Node) beatLoop(wg *sync.WaitGroup) {
	defer wg.Done()
	ticker := time.NewTicker(n.memb.Interval())
	defer ticker.Stop()
	for {
		select {
		case <-n.closed:
			return
		case <-ticker.C:
		}
		view := n.memb.View()
		size := beatMsgSize(len(view.Status))
		if err := n.linkDataOut().TrySendEncoded(size, func(dst []byte) int {
			return encodeBeatMsg(dst, int(n.id), view)
		}); err == nil {
			atomic.AddInt64(&n.beatsSent, 1)
		}
		// Silence is evidence only while this node is actually listening:
		// the tick is skipped unless dataLoop is parked in Recv. A parked
		// receiver on an empty link that still hears nothing has a truly
		// silent predecessor; a receiver that is busy processing — or
		// blocked on its own locks behind a fragment-load storm — has
		// manufactured the silence itself, and counting it would let a
		// stalled node kill a healthy neighbour (observed as cascading
		// false deaths on a 1M-row ring under client load).
		if atomic.LoadInt32(&n.recvParked) == 0 {
			continue
		}
		for _, dead := range n.memb.Tick() {
			go n.ring.failover(core.NodeID(dead))
		}
	}
}

// onBeat handles an arrived heartbeat: merge the sender's view, reset
// the predecessor timeout, and fail over anything the merge newly
// declared dead.
func (n *Node) onBeat(data []byte) {
	if n.memb == nil {
		return
	}
	from, view, err := decodeBeatMsg(data)
	if err != nil {
		return
	}
	atomic.AddInt64(&n.beatsRecv, 1)
	for _, dead := range n.memb.OnBeat(from, view) {
		go n.ring.failover(core.NodeID(dead))
	}
}

// ---------------------------------------------------------------------
// death and failover
// ---------------------------------------------------------------------

// kill stops this node: runtime, goroutines, links. Idempotent.
// Closing the node's own messengers is what unblocks its receive loops
// (and, on the inproc transport, what makes the neighbours' pending
// sends fail) — the same shape as the old Ring.Close body.
func (n *Node) kill() {
	n.killOnce.Do(func() {
		n.mu.Lock()
		n.rt.Stop()
		n.mu.Unlock()
		close(n.closed)
		n.linkDataOut().Close()
		n.linkReqOut().Close()
		n.linkDataIn().Close()
		n.linkReqIn().Close()
	})
}

// KillNode simulates the crash of node i: its runtime stops, its links
// close, its goroutines exit. Nothing is announced — survivors must
// notice through missed heartbeats, exactly as with a real crash.
func (r *Ring) KillNode(i int) {
	r.node(i).kill()
}

// isDead reports whether the ring has declared id dead.
func (r *Ring) isDead(id core.NodeID) bool {
	if r.cfg.Replicas <= 0 {
		return false
	}
	r.memMu.RLock()
	defer r.memMu.RUnlock()
	return r.deadNodes[id]
}

// Alive reports whether node i is currently part of the live ring.
func (r *Ring) Alive(i int) bool {
	return !r.isDead(core.NodeID(i))
}

// AliveNodes reports per-node liveness in ring order — the membership
// view the server layer hands to clients as a routing cache.
func (r *Ring) AliveNodes() []bool {
	nodes := r.nodeList()
	out := make([]bool, len(nodes))
	r.memMu.RLock()
	for i := range nodes {
		out[i] = !r.deadNodes[core.NodeID(i)]
	}
	r.memMu.RUnlock()
	return out
}

// nextAlive returns the first live ring successor of id (id itself if
// everyone else is dead). Callers must not hold a node's mu.
func (r *Ring) nextAlive(id core.NodeID) core.NodeID {
	n := len(r.nodeList())
	r.memMu.RLock()
	defer r.memMu.RUnlock()
	for k := 1; k <= n; k++ {
		cand := core.NodeID((int(id) + k) % n)
		if !r.deadNodes[cand] {
			return cand
		}
	}
	return id
}

// prevAlive returns the first live ring predecessor of id.
func (r *Ring) prevAlive(id core.NodeID) core.NodeID {
	n := len(r.nodeList())
	r.memMu.RLock()
	defer r.memMu.RUnlock()
	for k := 1; k <= n; k++ {
		cand := core.NodeID((int(id) - k + n*n) % n)
		if !r.deadNodes[cand] {
			return cand
		}
	}
	return id
}

// failover declares node dead and repairs the ring around it: cut the
// node off, update every survivor's view, splice the neighbour links,
// and promote replicas so every fragment has a live owner again. Any
// survivor's detector may initiate it (directly or via gossip);
// failMu + the deadNodes check make it run exactly once per death.
func (r *Ring) failover(dead core.NodeID) {
	if r.cfg.Replicas <= 0 {
		return
	}
	r.failMu.Lock()
	defer r.failMu.Unlock()
	r.memMu.Lock()
	if r.deadNodes[dead] {
		r.memMu.Unlock()
		return
	}
	survivors := 0
	for _, n := range r.nodeList() {
		if !r.deadNodes[n.id] && n.id != dead {
			survivors++
		}
	}
	if survivors == 0 {
		// Never declare the last live node dead: with nobody left to
		// promote its fragments, cutting it off only destroys data.
		r.memMu.Unlock()
		return
	}
	r.deadNodes[dead] = true
	r.memMu.Unlock()
	atomic.AddInt64(&r.failovers, 1)

	// The verdict makes itself true: a node declared dead is cut off
	// even if it was merely slow (there is no rejoin — a restarted
	// process joins as a new ring), so the catalog can never end up
	// with two live owners of one fragment.
	r.node(int(dead)).kill()

	// Authoritative view update on every survivor; the gossiped beats
	// then only confirm it. This also bumps every view version past the
	// pre-death view, which is what client routing caches key on.
	for _, s := range r.nodeList() {
		if s.id != dead && s.memb != nil {
			s.memb.MarkDead(int(dead))
		}
	}

	r.splice(dead)
	r.promote(dead)

	// Envelopes that were sitting in the dead node's queues died with
	// it, and their owners have no way to tell: the owner's books say
	// "circulating", so interest signals are absorbed forever and the
	// fragment never re-enters orbit. Every survivor assumes the worst
	// for its in-flight fragments; outstanding requests re-admit them
	// within one resend timeout (see Runtime.SuspectOrbit).
	for _, s := range r.nodeList() {
		if s.id == dead {
			continue
		}
		r.memMu.RLock()
		deadToo := r.deadNodes[s.id]
		r.memMu.RUnlock()
		if deadToo {
			continue
		}
		s.mu.Lock()
		s.rt.SuspectOrbit()
		s.mu.Unlock()
	}
}

// splice reroutes the ring around the dead node: a fresh data link from
// its live predecessor to its live successor, and a fresh request link
// the other way. New messengers are installed before the old ones are
// closed — a receive loop whose Recv fails re-checks the current link
// pointer and resumes on the replacement (dataLoop/reqLoop).
func (r *Ring) splice(dead core.NodeID) {
	p := r.node(int(r.prevAlive(dead)))
	s := r.node(int(r.nextAlive(dead)))

	if dataA, dataB, reason, err := newQueuePair(r.cfg.Transport, r.backend, r.maxMsgBytes); err == nil {
		r.noteBackendFallback(reason)
		mA, errA := rdma.NewMessengerDepth(dataA, r.maxMsgBytes, r.dataDepth)
		mB, errB := rdma.NewMessengerDepth(dataB, r.maxMsgBytes, r.dataDepth)
		if errA == nil && errB == nil {
			p.swapDataOut(mA).Close()
			s.swapDataIn(mB).Close()
		}
	}
	if reqA, reqB, _, err := newQueuePair(r.cfg.Transport, rdma.BackendTCP, 1<<12); err == nil {
		rA, errA := rdma.NewMessenger(reqA, 1<<12)
		rB, errB := rdma.NewMessenger(reqB, 1<<12)
		if errA == nil && errB == nil {
			s.swapReqOut(rA).Close()
			p.swapReqIn(rB).Close()
		}
	}
	if s.memb != nil {
		// The successor now times out its new predecessor, with a full
		// timeout budget from the splice instant.
		s.memb.SetPredecessor(int(p.id))
	}
}

// promote re-owns every fragment the dead node owned from its surviving
// replicas, column by column. Each column's promotions run under the
// same column lock UpdateColumn uses, which is the whole staleness
// argument for promoted replicas: UpdateColumn installs replica copies
// at the new version *before* advancing the catalog inside its critical
// section, so by the time promote holds the lock, the surviving replica
// it installs is at the catalog version — a promotion can never resurrect
// a superseded payload. Fragments whose replicas all died with the
// owner are counted lost (k deaths within one detection window exceed
// a k-replica budget by construction).
func (r *Ring) promote(dead core.NodeID) {
	dn := r.node(int(dead))
	dn.mu.Lock()
	owned := dn.rt.OwnedBATs()
	dn.mu.Unlock()

	// Group the dead node's fragments by column for lock batching.
	byCol := map[string][]core.BATID{}
	r.memMu.RLock()
	deadOwned := make([]core.BATID, 0, len(owned))
	for _, id := range owned {
		if r.fragOwner[id] == dead {
			deadOwned = append(deadOwned, id)
		}
	}
	r.memMu.RUnlock()
	r.idsMu.RLock()
	for _, id := range deadOwned {
		name := r.fragCol[id]
		byCol[name] = append(byCol[name], id)
	}
	r.idsMu.RUnlock()

	for name, ids := range byCol {
		mu := r.columnLock(name)
		mu.Lock()
		for _, id := range ids {
			r.promoteFrag(dead, id)
		}
		mu.Unlock()
	}
}

// promoteFrag re-owns one fragment from its first live replica holder.
// Called with the fragment's column lock held (serialized against
// UpdateColumn) and no node mu held.
func (r *Ring) promoteFrag(dead core.NodeID, id core.BATID) {
	r.memMu.RLock()
	if r.fragOwner[id] != dead {
		// Ownership moved while promote waited on the column lock — a
		// join migration re-owned the fragment toward a live node. The
		// catalog is already repaired; promoting on top of it would
		// install a second owner.
		r.memMu.RUnlock()
		return
	}
	chain := r.fragReplicas[id]
	var heir *Node
	for _, nid := range chain {
		if !r.deadNodes[nid] {
			heir = r.node(int(nid))
			break
		}
	}
	r.memMu.RUnlock()
	if heir == nil {
		atomic.AddInt64(&r.lostFrags, 1)
		return
	}

	catVer := r.fragVersion(id)
	heir.mu.Lock()
	rp := heir.replicas[id]
	if rp == nil || rp.ver != catVer {
		// Can't happen while the column lock is honored (see promote's
		// comment); refuse to serve a stale payload regardless.
		heir.mu.Unlock()
		atomic.AddInt64(&r.lostFrags, 1)
		return
	}
	delete(heir.replicas, id)
	heir.store[id] = rp.b
	if heir.versions == nil {
		heir.versions = map[core.BATID]int{}
	}
	heir.versions[id] = rp.ver
	// The heir's cached/transit copies of the fragment are superseded
	// by its new store entry; drop them so every serve path agrees.
	heir.dropWireEntry(id)
	if heir.hot != nil {
		heir.hot.drop(id)
	}
	// Enter S1 cold with the interest the fragment had accumulated:
	// the next request re-admits it into circulation through tryLoad.
	heir.rt.PromoteOwned(id, rp.b.Bytes(), rp.loi)
	heir.mu.Unlock()

	r.memMu.Lock()
	r.fragOwner[id] = heir.id
	// Shrink the chain to the surviving holders beyond the heir.
	rest := make([]core.NodeID, 0, len(chain))
	for _, nid := range chain {
		if nid != heir.id && !r.deadNodes[nid] {
			rest = append(rest, nid)
		}
	}
	r.fragReplicas[id] = rest
	r.memMu.Unlock()
	atomic.AddInt64(&r.promotions, 1)
}

// ---------------------------------------------------------------------
// stats
// ---------------------------------------------------------------------

// MembershipStats is the membership/failover snapshot, shaped like
// HopStats/CacheStats: per node, or ring-wide via Ring.MembershipStats.
type MembershipStats struct {
	Enabled     bool   // Replicas > 0
	Ring        string // ring label in a multi-ring runtime ("hot", "cold")
	ViewVersion int64  // membership view version (max over live nodes)
	Alive       int    // nodes alive in that view
	Suspect     int    // nodes under suspicion
	Dead        int    // nodes declared dead
	Replicas    int64  // replica copies held
	ReplicaLag  int64  // replicas behind the catalog version
	Failovers   int64  // deaths failed over
	Promotions  int64  // fragments re-owned from replicas
	LostFrags   int64  // fragments lost (all replicas dead)
	BeatsSent   int64  // heartbeat pulses sent
	BeatsRecv   int64  // heartbeat pulses received
}

// MembershipStats snapshots this node's membership state.
func (n *Node) MembershipStats() MembershipStats {
	var s MembershipStats
	if n.memb == nil {
		return s
	}
	s.Enabled = true
	s.Ring = n.memb.Ring()
	v := n.memb.View()
	s.ViewVersion = v.Version
	s.Alive, s.Suspect, s.Dead = v.Counts()
	n.mu.Lock()
	ids := make([]core.BATID, 0, len(n.replicas))
	vers := make([]int, 0, len(n.replicas))
	for id, rp := range n.replicas {
		ids = append(ids, id)
		vers = append(vers, rp.ver)
	}
	n.mu.Unlock()
	s.Replicas = int64(len(ids))
	for i, id := range ids {
		if vers[i] < n.ring.fragVersion(id) {
			s.ReplicaLag++
		}
	}
	s.Failovers = atomic.LoadInt64(&n.ring.failovers)
	s.Promotions = atomic.LoadInt64(&n.ring.promotions)
	s.LostFrags = atomic.LoadInt64(&n.ring.lostFrags)
	s.BeatsSent = atomic.LoadInt64(&n.beatsSent)
	s.BeatsRecv = atomic.LoadInt64(&n.beatsRecv)
	return s
}

// MembershipStats aggregates over live nodes: view fields come from the
// most advanced live view, counters sum.
func (r *Ring) MembershipStats() MembershipStats {
	var total MembershipStats
	first := true
	for _, n := range r.nodeList() {
		if r.isDead(n.id) {
			continue
		}
		s := n.MembershipStats()
		if !s.Enabled {
			continue
		}
		total.Enabled = true
		total.Ring = s.Ring
		if first || s.ViewVersion > total.ViewVersion {
			total.ViewVersion = s.ViewVersion
			total.Alive, total.Suspect, total.Dead = s.Alive, s.Suspect, s.Dead
			first = false
		}
		total.Replicas += s.Replicas
		total.ReplicaLag += s.ReplicaLag
		total.BeatsSent += s.BeatsSent
		total.BeatsRecv += s.BeatsRecv
	}
	total.Failovers = atomic.LoadInt64(&r.failovers)
	total.Promotions = atomic.LoadInt64(&r.promotions)
	total.LostFrags = atomic.LoadInt64(&r.lostFrags)
	return total
}

// UnownedFragments counts fragments whose recorded owner is dead and
// that failover has not yet re-owned — the quantity the recovery-time
// experiments watch going to zero.
func (r *Ring) UnownedFragments() int {
	r.memMu.RLock()
	defer r.memMu.RUnlock()
	c := 0
	for _, owner := range r.fragOwner {
		if r.deadNodes[owner] {
			c++
		}
	}
	return c
}
