package live

// The routed multi-ring runtime: ring identity, the routing layer, and
// LOI-driven hot/cold tiering.
//
// A single Data Cyclotron ring forces one revolution time on every
// fragment: wide enough for the whole database means slow enough to
// hurt the hot set. The paper's hot-set economy (LOI admission, §3.3)
// already concentrates *circulation* on interesting data; this layer
// concentrates *ring capacity* the same way. Two rings run side by
// side — a small fast hot ring (short revolution, hot-set caches on)
// and a wide cold ring (batched hops, long linger, parked-by-default)
// — and fragments migrate between them as their observed interest
// crosses configurable thresholds. The router in front maps
// column → fragment → (ring, node): every pin resolves its fragment's
// home ring at acquisition time, and a pin landing on the wrong ring
// is dispatched to a delegate on the home ring, where it runs the real
// circulation machinery (a cold pin pays the cold revolution — that is
// the point; the cure is the promotion the access itself feeds).
//
// Ring identity: every Ring carries a RingID and the rings of one
// runtime share one catalog — the cold ring (born with all columns)
// owns the canonical maps and the hot ring (born empty) aliases them,
// so every existing per-ring read path (Fragments, fragVersion,
// fragKnown, failover's fragCol grouping) works unchanged on both
// rings. Only catalog *writes* (Publish) are router-mediated: one
// extension under all rings' catalog locks.
//
// Migration ordering (the PR 8 rebalance contract, cross-ring): under
// the fragment's column lock — the same lock UpdateColumn, failover
// promotion, and join rebalancing serialize on —
//
//  1. install the payload at the destination owner (store, version,
//     replica chain) with PromoteOwned, so pins already blocked there
//     are delivered BEFORE anything flips;
//  2. flip the fragment's home in the routing catalog: every access
//     from here on resolves to the destination;
//  3. drain the source: wait until no in-flight access that resolved
//     to the source remains (the per-(fragment, ring) access counters)
//     and no source node still has an outstanding ring request for the
//     fragment;
//  4. release the source copy (owner store, replicas, membership
//     bookkeeping).
//
// Between 2 and 4 both rings hold a serving copy — the drained
// stragglers are served by the source exactly as MVCC serves readers
// of a superseded version. A drain that outlives its timeout parks the
// release on a pending list retried by the tier scanner; the fragment
// is simply resident twice until the source quiesces. The column lock
// is held across the whole sequence, so no update can interleave with
// a half-moved fragment and no two migrations of one column overlap.
//
// The flash-crowd path: a cold fragment whose interest spikes
// (FlashCrowdHits accesses inside one scan window) is promoted
// immediately from the access path itself — a store-to-store transfer
// that does not wait for the cold ring to come around, so the cure
// lands within one cold revolution of the first spike.
//
// Tiers=0/1 is the compatibility gate: NewRouter builds one standalone
// ring with a nil router back-pointer, and every routed branch in the
// pin/publish/update paths gates on that nil — the single ring stays
// byte-identical to the pre-router runtime.

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bat"
	"repro/internal/core"
	"repro/internal/mal"
	"repro/internal/minisql"
	"repro/internal/netsim"
)

// RingID names one ring of a multi-ring runtime. A standalone ring is
// always 0.
type RingID int

// Tier ring identities in a two-tier runtime.
const (
	// HotRing is the small fast ring (short revolution, caches on).
	HotRing RingID = 0
	// ColdRing is the wide slow ring (batched hops, parked-by-default).
	ColdRing RingID = 1
)

func (t RingID) String() string {
	switch t {
	case HotRing:
		return "hot"
	case ColdRing:
		return "cold"
	}
	return fmt.Sprintf("ring%d", int(t))
}

// RouterConfig tunes the routed runtime.
type RouterConfig struct {
	// Tiers selects the topology: 0 or 1 builds a single standalone
	// ring from Cold/ColdNodes (byte-identical to NewRing — the
	// compatibility gate); 2 builds the hot/cold pair.
	Tiers int
	// HotNodes / ColdNodes size the two rings (each needs >= 2).
	HotNodes  int
	ColdNodes int
	// Hot / Cold are the per-ring configs. DefaultRouterConfig shapes
	// them for purpose: hot = unbatched hops and hot-set caches (short
	// revolution), cold = batched hops with a long linger and
	// parked-by-default circulation (capacity over latency).
	Hot  Config
	Cold Config
	// PromoteHeat promotes a cold fragment whose decayed access level
	// reaches it; DemoteHeat demotes a hot fragment that falls to it.
	PromoteHeat float64
	DemoteHeat  float64
	// TierScan is the migration scan period (and the heat half-life:
	// every scan decays all levels by half).
	TierScan time.Duration
	// FlashCrowdHits triggers the flash-crowd path: a cold fragment
	// accessed this many times within one scan window is promoted
	// immediately from the access path, without waiting for the
	// scanner. Negative disables the path.
	FlashCrowdHits int
	// HotFragments caps how many fragments the scanner keeps homed on
	// the hot ring (<= 0: no cap). Flash promotions ignore the cap; the
	// next scan demotes the coldest overflow.
	HotFragments int
	// ReleaseTimeout bounds how long a migration waits for the source
	// ring to drain before parking the release on the pending list.
	ReleaseTimeout time.Duration
	// TierFaults, when non-nil, injects faults into tier migration
	// transfers exactly as Config.JoinFaults does for join transfers: a
	// drop abandons the migration (the fragment stays put), a delay
	// stretches the window where kills land. Tests only.
	TierFaults *netsim.Faults
}

// DefaultRouterConfig suits in-process two-tier runtimes.
func DefaultRouterConfig() RouterConfig {
	hot := DefaultConfig()
	// The hot ring is built for revolution time: per-fragment sends
	// (no batch linger on the critical path) and the hot-set cache on.
	hot.HopBatchBytes = 0
	cold := DefaultConfig()
	// The cold ring is built for capacity: batched hops, a long linger
	// (wide revolutions are the budget the hot tier buys back), no
	// cache — cold pins are expected to be rare, and batching turns on
	// parked-by-default circulation so uninteresting fragments do not
	// even burn cold bandwidth.
	cold.CacheBytes = 0
	cold.HopBatchLinger = 2 * time.Millisecond
	return RouterConfig{
		Tiers:          2,
		HotNodes:       2,
		ColdNodes:      4,
		Hot:            hot,
		Cold:           cold,
		PromoteHeat:    3,
		DemoteHeat:     0.25,
		TierScan:       50 * time.Millisecond,
		FlashCrowdHits: 3,
		HotFragments:   64,
		ReleaseTimeout: 250 * time.Millisecond,
	}
}

// accKey counts in-flight accesses per (fragment, resolved home ring):
// the drain primitive of migration step 3. Keying by the ring the
// access resolved to — not just the fragment — lets post-flip accesses
// (which resolve to the destination) proceed without blocking the
// source drain.
type accKey struct {
	id   core.BATID
	ring RingID
}

// Router is the routing layer of a multi-ring runtime.
type Router struct {
	cfg    RouterConfig
	rings  []*Ring // indexed by RingID: [hot, cold] (or the single ring)
	query  *Ring   // where Submit settles queries (the hot ring)
	single bool    // Tiers < 2: one standalone ring, no routed paths

	// catMu guards fragHome, the routing catalog: fragment id → home
	// ring. Reads are the pin path's routing decision; the only writes
	// are publish (new id) and migration step 2 (the flip). Lock order:
	// accMu may be held when catMu is taken, never the reverse.
	catMu    sync.RWMutex
	fragHome map[core.BATID]RingID

	// accMu guards inflight, the per-(fragment, ring) access counters.
	accMu    sync.Mutex
	inflight map[accKey]int

	// heatMu guards the promotion-heat ledger: the router-observable
	// analogue of the circulating LOI (the router never sees the wire,
	// so it keeps its own decayed access counters per fragment).
	heatMu sync.Mutex
	heat   map[core.BATID]*core.Heat

	// promMu guards promoting (migrations in flight, keyed by start
	// time for flash latency) and pendingRelease (sources that did not
	// drain inside ReleaseTimeout, retried by the scanner).
	promMu         sync.Mutex
	promoting      map[core.BATID]time.Time
	pendingRelease map[core.BATID]RingID

	// Column update locks live here in a routed runtime: one mutex per
	// column across all rings (Ring.columnLock delegates), so updates,
	// failover promotion, join rebalancing, and tier migration all
	// serialize on the same lock whichever ring they run on.
	updMuMu sync.Mutex
	updMu   map[string]*sync.Mutex

	// goMu guards closing and wg.Add: a flash promotion spawned from
	// the access path must not race Close's wg.Wait.
	goMu    sync.Mutex
	closing bool
	wg      sync.WaitGroup
	closed  chan struct{}

	delegateSeq int64 // atomic: round-robin delegate picker
	placeSeq    int64 // atomic: round-robin destination-owner picker

	promotions      int64 // atomic: cold → hot migrations
	demotions       int64 // atomic: hot → cold migrations
	flashPromotions int64 // atomic: promotions taken on the flash path
	remoteFetches   int64 // atomic: pins dispatched cross-ring
	lastFlashNanos  int64 // atomic: latest flash promotion latency
}

// NewRouter builds the routed runtime over the given database columns.
// With rc.Tiers < 2 it builds exactly one standalone ring (the
// Tiers=0 compatibility gate: no router back-pointer, no routed code
// paths, byte-identical behavior); with rc.Tiers == 2 it builds the
// hot/cold pair sharing one catalog and starts the tier scanner.
func NewRouter(columns map[string]*bat.BAT, schema minisql.Schema, rc RouterConfig) (*Router, error) {
	if rc.Tiers > 2 {
		return nil, fmt.Errorf("live: %d tiers unsupported (max 2)", rc.Tiers)
	}
	if rc.Cold.QueueCap == 0 && rc.Cold.Workers == 0 {
		rc.Cold = DefaultConfig()
	}
	if rc.Hot.QueueCap == 0 && rc.Hot.Workers == 0 {
		rc.Hot = DefaultConfig()
		rc.Hot.HopBatchBytes = 0
	}
	if rc.ColdNodes < 2 {
		rc.ColdNodes = 2
	}
	if rc.HotNodes < 2 {
		rc.HotNodes = 2
	}
	if rc.PromoteHeat <= 0 {
		rc.PromoteHeat = 3
	}
	if rc.DemoteHeat <= 0 {
		rc.DemoteHeat = 0.25
	}
	if rc.TierScan <= 0 {
		rc.TierScan = 50 * time.Millisecond
	}
	if rc.FlashCrowdHits == 0 {
		rc.FlashCrowdHits = 3
	}
	if rc.ReleaseTimeout <= 0 {
		rc.ReleaseTimeout = 250 * time.Millisecond
	}

	rtr := &Router{
		cfg:            rc,
		fragHome:       map[core.BATID]RingID{},
		inflight:       map[accKey]int{},
		heat:           map[core.BATID]*core.Heat{},
		promoting:      map[core.BATID]time.Time{},
		pendingRelease: map[core.BATID]RingID{},
		updMu:          map[string]*sync.Mutex{},
		closed:         make(chan struct{}),
	}

	if rc.Tiers < 2 {
		ring, err := NewRing(rc.ColdNodes, columns, schema, rc.Cold)
		if err != nil {
			return nil, err
		}
		rtr.single = true
		rtr.rings = []*Ring{ring}
		rtr.query = ring
		return rtr, nil
	}

	coldCfg := rc.Cold
	coldCfg.ringID = ColdRing
	coldCfg.router = rtr
	cold, err := NewRing(rc.ColdNodes, columns, schema, coldCfg)
	if err != nil {
		return nil, err
	}
	hotCfg := rc.Hot
	hotCfg.ringID = HotRing
	hotCfg.router = rtr
	// The hot ring is born empty but admits whatever migrates onto it:
	// its RDMA regions must fit the cold ring's largest message.
	hotCfg.minMsgBytes = cold.maxMsgBytes
	hot, err := NewRing(rc.HotNodes, map[string]*bat.BAT{}, schema, hotCfg)
	if err != nil {
		cold.Close()
		return nil, err
	}

	// One catalog, two rings: the hot ring aliases the cold ring's
	// maps, so every per-ring catalog read works unchanged on both and
	// a Publish extends both at once. The names index stays per-ring
	// (appended separately — a plain slice cannot be shared). No
	// traffic has touched the hot ring yet; the lock is for the
	// happens-before edge to its already-running receive loops.
	hot.idsMu.Lock()
	hot.cols = cold.cols
	hot.fragVer = cold.fragVer
	hot.fragCol = cold.fragCol
	hot.names = append([]string(nil), cold.names...)
	hot.idsMu.Unlock()

	rtr.rings = []*Ring{hot, cold}
	rtr.query = hot
	rtr.catMu.Lock()
	cold.idsMu.RLock()
	for id := range cold.fragVer {
		rtr.fragHome[id] = ColdRing
	}
	cold.idsMu.RUnlock()
	rtr.catMu.Unlock()

	rtr.wg.Add(1)
	go rtr.tierLoop()
	return rtr, nil
}

// ---------------------------------------------------------------------
// accessors
// ---------------------------------------------------------------------

// Tiers reports how many rings the runtime runs.
func (rtr *Router) Tiers() int { return len(rtr.rings) }

// Tier returns ring t.
func (rtr *Router) Tier(t RingID) *Ring { return rtr.rings[t] }

// QueryRing returns the ring queries settle on (the hot ring of a
// two-tier runtime, the only ring otherwise).
func (rtr *Router) QueryRing() *Ring { return rtr.query }

// HomeOf reports the home ring of one fragment.
func (rtr *Router) HomeOf(id core.BATID) RingID { return rtr.homeOf(id) }

// Homes reports the home ring of every fragment of a column, in
// fragment order.
func (rtr *Router) Homes(name string) ([]RingID, bool) {
	ids, ok := rtr.rings[0].Fragments(name)
	if !ok {
		return nil, false
	}
	homes := make([]RingID, len(ids))
	for i, id := range ids {
		homes[i] = rtr.homeOf(id)
	}
	return homes, true
}

// Submit executes sql on the query ring (nomadic bidding among its
// nodes, §6.1); pins of cold-homed fragments dispatch through the
// router from there.
func (rtr *Router) Submit(sql string) (*mal.ResultSet, error) { return rtr.query.Submit(sql) }

// Fetch retrieves a column by name from the least-loaded query-ring
// node.
func (rtr *Router) Fetch(name string) (*bat.BAT, error) {
	nodes := rtr.query.nodeList()
	best := nodes[0]
	bestBid := int64(1 << 62)
	for _, n := range nodes {
		if rtr.query.isDead(n.id) {
			continue
		}
		if bid := atomic.LoadInt64(&n.activeQueries); bid < bestBid {
			bestBid = bid
			best = n
		}
	}
	return best.Fetch(name)
}

// Close shuts the runtime down: scanner first (no new migrations),
// then every ring.
func (rtr *Router) Close() {
	rtr.goMu.Lock()
	if !rtr.closing {
		rtr.closing = true
		close(rtr.closed)
	}
	rtr.goMu.Unlock()
	rtr.wg.Wait()
	for _, rg := range rtr.rings {
		rg.Close()
	}
}

// Quiesce waits for every ring's queues to settle.
func (rtr *Router) Quiesce(timeout time.Duration) bool {
	ok := true
	for _, rg := range rtr.rings {
		if !rg.Quiesce(timeout) {
			ok = false
		}
	}
	return ok
}

// ---------------------------------------------------------------------
// routing: home resolution and the access protocol
// ---------------------------------------------------------------------

// homeOf resolves a fragment's home ring. Ids the routing catalog does
// not know default to the cold ring (they cannot be hot: promotion is
// the only way in, and promotion records the flip here first).
func (rtr *Router) homeOf(id core.BATID) RingID {
	rtr.catMu.RLock()
	home, ok := rtr.fragHome[id]
	rtr.catMu.RUnlock()
	if !ok && !rtr.single {
		return ColdRing
	}
	return home
}

// beginAccess opens one pin's access to a fragment: it resolves the
// home ring and holds an access count against (fragment, home) until
// the returned release runs. The resolution and the count are one
// critical section — a migration's home flip (under catMu.Lock)
// therefore cleanly splits accesses into "counted against the source,
// drained before release" and "resolved to the destination". The
// access also feeds the promotion-heat ledger (and may trigger a
// flash-crowd promotion).
func (rtr *Router) beginAccess(id core.BATID) (RingID, func()) {
	rtr.accMu.Lock()
	home := rtr.homeOf(id)
	key := accKey{id, home}
	rtr.inflight[key]++
	rtr.accMu.Unlock()
	rtr.noteAccess(id, home)
	var once sync.Once
	release := func() {
		once.Do(func() {
			rtr.accMu.Lock()
			if rtr.inflight[key]--; rtr.inflight[key] <= 0 {
				delete(rtr.inflight, key)
			}
			rtr.accMu.Unlock()
		})
	}
	return home, release
}

// accessesIdle reports whether no in-flight access is counted against
// (id, ring).
func (rtr *Router) accessesIdle(id core.BATID, ring RingID) bool {
	rtr.accMu.Lock()
	n := rtr.inflight[accKey{id, ring}]
	rtr.accMu.Unlock()
	return n == 0
}

// noteAccess bumps the fragment's promotion heat and fires the
// flash-crowd path when a cold fragment's interest spikes inside one
// scan window.
func (rtr *Router) noteAccess(id core.BATID, home RingID) {
	rtr.heatMu.Lock()
	h := rtr.heat[id]
	if h == nil {
		h = &core.Heat{}
		rtr.heat[id] = h
	}
	h.Bump()
	flash := home == ColdRing && rtr.cfg.FlashCrowdHits > 0 &&
		h.Window() >= rtr.cfg.FlashCrowdHits
	rtr.heatMu.Unlock()
	if !flash || !rtr.markMigrating(id) {
		return
	}
	rtr.goMu.Lock()
	if rtr.closing {
		rtr.goMu.Unlock()
		rtr.unmarkMigrating(id)
		return
	}
	rtr.wg.Add(1)
	rtr.goMu.Unlock()
	go rtr.flashPromote(id)
}

// heatLevel reads a fragment's current decayed access level.
func (rtr *Router) heatLevel(id core.BATID) float64 {
	rtr.heatMu.Lock()
	defer rtr.heatMu.Unlock()
	if h := rtr.heat[id]; h != nil {
		return h.Level()
	}
	return 0
}

// ---------------------------------------------------------------------
// cross-ring pin dispatch
// ---------------------------------------------------------------------

// fetchRemote acquires a fragment homed on another ring on behalf of a
// pin: a delegate node on the home ring — deliberately a non-owner, so
// the pin meets the ring rather than shortcutting into the owner's
// store — runs the real request/waiter/circulation machinery there and
// hands back the payload with its version label. The caller's cancel
// and abort channels pass straight through to the delegate's wait. If
// the fragment migrates again mid-flight, the delegate's own
// acquisition re-resolves the home and recurses here — bounded by the
// migration rate, and correct on either path because a migration
// drains before it releases (there is always a serving owner on
// whichever ring an access resolved to).
func (rtr *Router) fetchRemote(id core.BATID, cancel, abort <-chan struct{}) (*bat.BAT, int, error) {
	atomic.AddInt64(&rtr.remoteFetches, 1)
	home := rtr.homeOf(id)
	ring := rtr.rings[home]
	dn := rtr.delegateFor(ring, id)
	if dn == nil {
		return nil, 0, fmt.Errorf("live: no live delegate on %v ring for fragment %d", home, id)
	}
	q := core.QueryID(atomic.AddInt64(&dn.nextQ, 1))<<16 | core.QueryID(dn.id)
	dc := &queryDC{n: dn, q: q, cancel: cancel}
	dn.mu.Lock()
	dn.rt.Request(q, id)
	dn.mu.Unlock()
	b, ver, viaRing, err := dc.acquireFrag(id, abort)
	dn.mu.Lock()
	if err == nil && viaRing {
		dn.rt.Unpin(q, id)
		dn.unrefCached(id)
	}
	dn.rt.CancelQuery(q, []core.BATID{id})
	dn.mu.Unlock()
	if err != nil {
		return nil, 0, err
	}
	// Full-length view, the Fetch discipline: a caller's Append must
	// not grow into the ring's copy.
	return b.Slice(0, b.Len()), ver, nil
}

// delegateFor picks a live node on ring rg to run a remote pin,
// preferring non-owners (round-robin) and falling back to the owner
// only when it is the last node standing.
func (rtr *Router) delegateFor(rg *Ring, id core.BATID) *Node {
	rg.memMu.RLock()
	owner, haveOwner := rg.fragOwner[id]
	rg.memMu.RUnlock()
	nodes := rg.nodeList()
	start := int(atomic.AddInt64(&rtr.delegateSeq, 1))
	var fallback *Node
	for k := 0; k < len(nodes); k++ {
		n := nodes[(start+k)%len(nodes)]
		if rg.isDead(n.id) {
			continue
		}
		if haveOwner && n.id == owner {
			fallback = n
			continue
		}
		return n
	}
	return fallback
}

// ---------------------------------------------------------------------
// shared catalog writes
// ---------------------------------------------------------------------

// lockCatalogs takes every ring's catalog lock in ring order (the
// rings slice is fixed at construction, so the order is total).
func (rtr *Router) lockCatalogs() {
	for _, rg := range rtr.rings {
		rg.idsMu.Lock()
	}
}

func (rtr *Router) unlockCatalogs() {
	for i := len(rtr.rings) - 1; i >= 0; i-- {
		rtr.rings[i].idsMu.Unlock()
	}
}

// publish extends the shared catalog with one new fragment homed on
// the publishing ring — the router half of Node.Publish. The maps are
// shared objects, so one mutation names the fragment on every ring;
// only the per-ring name indexes are appended individually.
func (rtr *Router) publish(home *Ring, name string) (core.BATID, error) {
	rtr.lockCatalogs()
	if _, exists := home.cols[name]; exists {
		rtr.unlockCatalogs()
		return 0, fmt.Errorf("live: fragment %q already published", name)
	}
	id := core.BATID(atomic.AddInt64(&nextDynamicID, 1))
	home.cols[name] = &colFrags{ids: []core.BATID{id}}
	home.fragVer[id] = &atomic.Int64{}
	home.fragCol[id] = name
	for _, rg := range rtr.rings {
		rg.names = append(rg.names, name)
	}
	rtr.unlockCatalogs()
	rtr.catMu.Lock()
	rtr.fragHome[id] = home.id
	rtr.catMu.Unlock()
	return id, nil
}

// columnLock returns the runtime-wide per-column update mutex (see
// Ring.columnLock, which delegates here in a routed runtime).
func (rtr *Router) columnLock(name string) *sync.Mutex {
	rtr.updMuMu.Lock()
	defer rtr.updMuMu.Unlock()
	l := rtr.updMu[name]
	if l == nil {
		l = &sync.Mutex{}
		rtr.updMu[name] = l
	}
	return l
}

// colOf maps a fragment back to its column name through the shared
// catalog.
func (rtr *Router) colOf(id core.BATID) string {
	rg := rtr.rings[0]
	rg.idsMu.RLock()
	defer rg.idsMu.RUnlock()
	return rg.fragCol[id]
}

// ringNode orders (ring, node) pairs for cross-ring multi-node
// critical sections: ring id first, node id second — the global lock
// order of the routed runtime (within one ring it degenerates to the
// node-id order every single-ring path already uses).
type ringNode struct {
	ring RingID
	n    *Node
}

func sortRingNodes(set []ringNode) {
	sort.Slice(set, func(a, b int) bool {
		if set[a].ring != set[b].ring {
			return set[a].ring < set[b].ring
		}
		return set[a].n.id < set[b].n.id
	})
}

// UpdateColumn is the cross-ring §6.4 update: a column's fragments may
// be homed on different rings, so the gather/apply/install cycle runs
// at the router under the runtime-wide column lock, with the ordered
// multi-node critical section spanning both rings. Ring.UpdateColumn
// delegates here in a routed runtime.
func (rtr *Router) UpdateColumn(name string, fn func(*bat.BAT) *bat.BAT) (int, error) {
	if rtr.single {
		return rtr.rings[0].UpdateColumn(name, fn)
	}
	ids, ok := rtr.rings[0].Fragments(name)
	if !ok {
		return 0, fmt.Errorf("live: unknown column %q", name)
	}
	lock := rtr.columnLock(name)
	lock.Lock()
	defer lock.Unlock()

	// Resolve each fragment's (ring, owner) under the column lock: no
	// migration can flip a home while we hold it. A home ring that
	// lost the fragment entirely (owner dead, no surviving replica) is
	// re-scanned across all rings before giving up — a pending source
	// copy is never found this way because the home ring's owner scan
	// runs first.
	rings := make([]*Ring, len(ids))
	owners := make([]*Node, len(ids))
	frags := make([]*bat.BAT, len(ids))
	for i, id := range ids {
		rg := rtr.rings[rtr.homeOf(id)]
		owner := rg.ownerOf(id)
		if owner == nil {
			for _, alt := range rtr.rings {
				if o := alt.ownerOf(id); o != nil {
					rg, owner = alt, o
					break
				}
			}
		}
		if owner == nil {
			return 0, fmt.Errorf("live: no owner for fragment %d of %q", i, name)
		}
		rings[i], owners[i] = rg, owner
		owner.mu.Lock()
		frags[i] = owner.store[id]
		owner.mu.Unlock()
	}
	cur := frags[0]
	if len(frags) > 1 {
		cur = bat.Concat(frags)
	}
	next := fn(cur)
	if next == nil {
		return 0, fmt.Errorf("live: update produced nil version")
	}
	spans := splitEven(next.Len(), len(ids))
	newFrags := make([]*bat.BAT, len(ids))
	for i, sp := range spans {
		nf := next
		if len(ids) > 1 {
			nf = next.Slice(sp[0], sp[1])
		}
		// Admission is per ring: each fragment must fit the regions of
		// the ring it is homed on.
		if wire := dataHdrSize + bat.MarshalSize(nf); wire > rings[i].MaxMessage() {
			return 0, fmt.Errorf("live: new version of %q fragment %d (%d wire bytes) exceeds %v ring message limit %d",
				name, i, wire, rings[i].id, rings[i].MaxMessage())
		}
		newFrags[i] = nf
	}

	// Surviving replica holders per fragment, each on its own ring.
	repNodes := map[core.BATID][]*Node{}
	for i, id := range ids {
		rg := rings[i]
		if rg.cfg.Replicas <= 0 {
			continue
		}
		rg.memMu.RLock()
		for _, nid := range rg.fragReplicas[id] {
			if !rg.deadNodes[nid] {
				repNodes[id] = append(repNodes[id], rg.node(int(nid)))
			}
		}
		rg.memMu.RUnlock()
	}

	// Ordered cross-ring critical section over every owner and replica
	// holder: see ringNode for the lock order.
	var lockSet []ringNode
	add := func(rg *Ring, node *Node) {
		for _, l := range lockSet {
			if l.n == node {
				return
			}
		}
		lockSet = append(lockSet, ringNode{rg.id, node})
	}
	for i := range ids {
		add(rings[i], owners[i])
	}
	for i, id := range ids {
		for _, rep := range repNodes[id] {
			add(rings[i], rep)
		}
	}
	sortRingNodes(lockSet)
	for _, l := range lockSet {
		l.n.mu.Lock()
	}
	version := 0
	for i, id := range ids {
		owner := owners[i]
		owner.store[id] = newFrags[i]
		owner.dropWireEntry(id)
		if owner.versions == nil {
			owner.versions = map[core.BATID]int{}
		}
		owner.versions[id]++
		newVer := owner.versions[id]
		if newVer > version {
			version = newVer
		}
		owner.rt.AdoptOwned(id, newFrags[i].Bytes(), owner.rt.Loaded(id))
		for _, rep := range repNodes[id] {
			loi := 0.0
			if old := rep.replicas[id]; old != nil {
				loi = old.loi
			}
			rep.replicas[id] = &replicaFrag{b: newFrags[i], ver: newVer, loi: loi}
		}
		// The shared catalog version advances once; the hygiene sweep
		// walks every ring's nodes — a superseded cache entry may be
		// resident on either tier.
		rg := rings[i]
		rg.idsMu.RLock()
		vp := rg.fragVer[id]
		rg.idsMu.RUnlock()
		if vp != nil {
			vp.Store(int64(newVer))
		}
		for _, tier := range rtr.rings {
			for _, node := range tier.nodeList() {
				if node.hot != nil {
					node.hot.invalidateBelow(id, newVer)
				}
			}
		}
	}
	for _, l := range lockSet {
		l.n.mu.Unlock()
	}
	return version, nil
}

// ---------------------------------------------------------------------
// tier migration
// ---------------------------------------------------------------------

// markMigrating claims a fragment for one migration (scan or flash),
// recording the claim time for flash latency. False means a migration
// of this fragment is already in flight.
func (rtr *Router) markMigrating(id core.BATID) bool {
	rtr.promMu.Lock()
	defer rtr.promMu.Unlock()
	if _, busy := rtr.promoting[id]; busy {
		return false
	}
	rtr.promoting[id] = time.Now()
	return true
}

func (rtr *Router) unmarkMigrating(id core.BATID) {
	rtr.promMu.Lock()
	delete(rtr.promoting, id)
	rtr.promMu.Unlock()
}

// migrateTier moves one fragment between rings with the
// install → flip → drain → release ordering described at the top of
// the file, entirely under the fragment's column lock. It returns
// false when the migration cannot proceed (fragment moved, source
// dead and promoted away, fault-dropped, oversized for the
// destination, or a previous source copy still pending release) — the
// fragment simply stays where the routing catalog says it is.
func (rtr *Router) migrateTier(id core.BATID, from, to RingID) bool {
	if from == to || rtr.single {
		return false
	}
	name := rtr.colOf(id)
	if name == "" {
		return false
	}
	lock := rtr.columnLock(name)
	lock.Lock()
	defer lock.Unlock()

	if rtr.homeOf(id) != from {
		return false
	}
	rtr.promMu.Lock()
	_, pending := rtr.pendingRelease[id]
	rtr.promMu.Unlock()
	if pending {
		// A previous migration's source copy has not drained yet; a
		// third copy would make release tracking ambiguous.
		return false
	}
	src, dst := rtr.rings[from], rtr.rings[to]
	srcOwner := src.ownerOf(id)
	if srcOwner == nil {
		return false
	}
	srcOwner.mu.Lock()
	b := srcOwner.store[id]
	ver := srcOwner.versions[id]
	srcOwner.mu.Unlock()
	if b == nil {
		return false
	}

	// Stream through the wire codec — the bytes a cross-ring transfer
	// would carry — and consult the fault injector with their size,
	// exactly the join-transfer failure surface.
	raw := bat.AppendMarshal(nil, b)
	if dataHdrSize+len(raw) > dst.MaxMessage() {
		return false // does not fit the destination ring's regions
	}
	if f := rtr.cfg.TierFaults; f != nil {
		delay, drop := f.Apply(dataHdrSize + len(raw))
		if delay > 0 {
			time.Sleep(delay)
		}
		if drop {
			return false
		}
		// The delay window is where kills land; re-check the source
		// before installing anything (the ownership re-check under the
		// node locks below catches promotion races the same way).
		if src.isDead(srcOwner.id) {
			return false
		}
	}
	nb, err := bat.UnmarshalView(raw)
	if err != nil {
		return false
	}

	dstOwner := rtr.pickOwner(dst)
	if dstOwner == nil {
		return false
	}
	// Destination replica chain under the destination ring's own
	// discipline: its next Replicas live successors.
	var chain []core.NodeID
	if dst.cfg.Replicas > 0 {
		size := dst.Size()
		for k := 1; k < size && len(chain) < dst.cfg.Replicas; k++ {
			cand := core.NodeID((int(dstOwner.id) + k) % size)
			if cand == dstOwner.id || dst.isDead(cand) {
				continue
			}
			chain = append(chain, cand)
		}
	}

	// Interest travels with the fragment: the promotion heat the router
	// observed is the admission LOI on the destination ring — high for
	// a promotion (the fragment re-enters circulation hot), low for a
	// demotion (it parks almost immediately, which is the intent).
	loi := rtr.heatLevel(id)

	// Step 1 — install at the destination, under the ordered cross-ring
	// critical section (source owner, destination owner, destination
	// replica holders).
	set := []ringNode{{from, srcOwner}}
	addSet := func(ring RingID, node *Node) {
		for _, l := range set {
			if l.n == node {
				return
			}
		}
		set = append(set, ringNode{ring, node})
	}
	addSet(to, dstOwner)
	for _, nid := range chain {
		addSet(to, dst.node(int(nid)))
	}
	sortRingNodes(set)
	for _, l := range set {
		l.n.mu.Lock()
	}
	if !srcOwner.rt.Owns(id) || srcOwner.versions[id] != ver || dst.isDead(dstOwner.id) {
		// The fragment moved or re-versioned since the unlocked read —
		// only possible through a path that held this column's lock
		// before us — or the chosen destination died in the window.
		for _, l := range set {
			l.n.mu.Unlock()
		}
		return false
	}
	dstOwner.store[id] = nb
	if dstOwner.versions == nil {
		dstOwner.versions = map[core.BATID]int{}
	}
	dstOwner.versions[id] = ver
	dstOwner.dropWireEntry(id)
	if dstOwner.hot != nil {
		dstOwner.hot.drop(id) // the owner serves its store, never a cached copy
	}
	// PromoteOwned, not AdoptOwned: pins already blocked at the
	// destination (queries raced the flip) are delivered from the
	// fresh copy immediately — BEFORE the catalog flips.
	dstOwner.rt.PromoteOwned(id, nb.Bytes(), loi)
	for _, nid := range chain {
		dst.node(int(nid)).replicas[id] = &replicaFrag{b: nb, ver: ver, loi: loi}
	}
	for _, l := range set {
		l.n.mu.Unlock()
	}
	// Destination membership bookkeeping before the flip: from the
	// instant the flip lands, a failover on the destination must know
	// this fragment's owner and chain.
	dst.memMu.Lock()
	dst.fragOwner[id] = dstOwner.id
	if len(chain) > 0 {
		dst.fragReplicas[id] = chain
	}
	dst.memMu.Unlock()

	// Step 2 — the flip: every access from here on resolves to the
	// destination ring.
	rtr.catMu.Lock()
	rtr.fragHome[id] = to
	rtr.catMu.Unlock()

	// Steps 3 and 4 — drain the source and release its copy, still
	// under the column lock (no update can land between flip and
	// release, so pre-flip stragglers drain against bytes that are
	// catalog-current for the version they pinned). A drain that
	// outlives the timeout parks the release for the scanner.
	if !rtr.releaseSource(src, id, rtr.cfg.ReleaseTimeout) {
		rtr.promMu.Lock()
		rtr.pendingRelease[id] = from
		rtr.promMu.Unlock()
	}
	return true
}

// pickOwner picks a live destination owner round-robin.
func (rtr *Router) pickOwner(rg *Ring) *Node {
	nodes := rg.nodeList()
	start := int(atomic.AddInt64(&rtr.placeSeq, 1))
	for k := 0; k < len(nodes); k++ {
		n := nodes[(start+k)%len(nodes)]
		if !rg.isDead(n.id) {
			return n
		}
	}
	return nil
}

// ringHasInterest reports whether any live node of r still has an
// outstanding ring request for id (core S2 state) — the circulation
// half of the drain condition.
func ringHasInterest(r *Ring, id core.BATID) bool {
	for _, n := range r.nodeList() {
		if r.isDead(n.id) {
			continue
		}
		n.mu.Lock()
		has := n.rt.HasRequest(id)
		n.mu.Unlock()
		if has {
			return true
		}
	}
	return false
}

// releaseSource waits for the source ring to drain (no in-flight
// access counted against it, no outstanding ring request on it) and
// then removes the residual copy: owner store and runtime ownership,
// replica copies, membership bookkeeping. Returns false if the drain
// outlived the timeout (nothing is removed; the scanner retries).
// Called with the fragment's column lock held.
func (rtr *Router) releaseSource(src *Ring, id core.BATID, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for !rtr.accessesIdle(id, src.id) || ringHasInterest(src, id) {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
	if owner := src.ownerOf(id); owner != nil {
		owner.mu.Lock()
		if owner.rt.Owns(id) {
			owner.rt.RemoveOwned(id)
			delete(owner.store, id)
			delete(owner.versions, id)
			owner.dropWireEntry(id)
		}
		owner.mu.Unlock()
	}
	for _, n := range src.nodeList() {
		n.mu.Lock()
		if n.replicas != nil {
			delete(n.replicas, id)
		}
		n.mu.Unlock()
	}
	src.memMu.Lock()
	delete(src.fragOwner, id)
	delete(src.fragReplicas, id)
	src.memMu.Unlock()
	return true
}

// flashPromote is the flash-crowd path: promote one cold fragment
// immediately from the access that crossed the threshold. The transfer
// is store-to-store (it does not wait for the cold ring to come
// around), so the promotion lands well within one cold revolution of
// the interest spike.
func (rtr *Router) flashPromote(id core.BATID) {
	defer rtr.wg.Done()
	rtr.promMu.Lock()
	start := rtr.promoting[id]
	rtr.promMu.Unlock()
	if rtr.migrateTier(id, ColdRing, HotRing) {
		atomic.AddInt64(&rtr.promotions, 1)
		atomic.AddInt64(&rtr.flashPromotions, 1)
		atomic.StoreInt64(&rtr.lastFlashNanos, time.Since(start).Nanoseconds())
	}
	rtr.unmarkMigrating(id)
}

// ---------------------------------------------------------------------
// the tier scanner
// ---------------------------------------------------------------------

func (rtr *Router) tierLoop() {
	defer rtr.wg.Done()
	t := time.NewTicker(rtr.cfg.TierScan)
	defer t.Stop()
	for {
		select {
		case <-rtr.closed:
			return
		case <-t.C:
			rtr.scanTiers()
			rtr.retryPending()
		}
	}
}

// scanTiers is one migration pass: decay every fragment's heat (the
// scan period is the heat half-life), demote hot-homed fragments whose
// level fell to DemoteHeat, promote cold-homed fragments whose level
// reached PromoteHeat — hottest first while the HotFragments cap
// allows.
func (rtr *Router) scanTiers() {
	levels := map[core.BATID]float64{}
	rtr.heatMu.Lock()
	for id, h := range rtr.heat {
		h.Decay(0.5)
		if h.Cold() {
			delete(rtr.heat, id)
			continue
		}
		levels[id] = h.Level()
	}
	rtr.heatMu.Unlock()

	type cand struct {
		id    core.BATID
		level float64
	}
	var promos, demos []cand
	hotCount := 0
	rtr.catMu.RLock()
	for id, home := range rtr.fragHome {
		if home == HotRing {
			hotCount++
			if levels[id] <= rtr.cfg.DemoteHeat {
				demos = append(demos, cand{id, levels[id]})
			}
		} else if lvl := levels[id]; lvl >= rtr.cfg.PromoteHeat {
			promos = append(promos, cand{id, lvl})
		}
	}
	rtr.catMu.RUnlock()

	// Coldest demotions first: they free hot capacity for this very
	// pass's promotions.
	sort.Slice(demos, func(a, b int) bool { return demos[a].level < demos[b].level })
	for _, c := range demos {
		if !rtr.markMigrating(c.id) {
			continue
		}
		if rtr.migrateTier(c.id, HotRing, ColdRing) {
			atomic.AddInt64(&rtr.demotions, 1)
			hotCount--
		}
		rtr.unmarkMigrating(c.id)
	}
	sort.Slice(promos, func(a, b int) bool { return promos[a].level > promos[b].level })
	for _, c := range promos {
		if rtr.cfg.HotFragments > 0 && hotCount >= rtr.cfg.HotFragments {
			break
		}
		if !rtr.markMigrating(c.id) {
			continue
		}
		if rtr.migrateTier(c.id, ColdRing, HotRing) {
			atomic.AddInt64(&rtr.promotions, 1)
			hotCount++
		}
		rtr.unmarkMigrating(c.id)
	}
}

// retryPending retries releases whose source drain outlived its
// migration's timeout (with a short per-retry budget — the scanner
// must not stall behind one stubborn straggler).
func (rtr *Router) retryPending() {
	rtr.promMu.Lock()
	pend := make(map[core.BATID]RingID, len(rtr.pendingRelease))
	for id, from := range rtr.pendingRelease {
		pend[id] = from
	}
	rtr.promMu.Unlock()
	for id, from := range pend {
		src := rtr.rings[from]
		lock := rtr.columnLock(rtr.colOf(id))
		lock.Lock()
		ok := rtr.releaseSource(src, id, time.Millisecond)
		lock.Unlock()
		if ok {
			rtr.promMu.Lock()
			delete(rtr.pendingRelease, id)
			rtr.promMu.Unlock()
		}
	}
}

// ---------------------------------------------------------------------
// stats
// ---------------------------------------------------------------------

// TierStats snapshots the routed runtime: residency per tier, the
// migration counters, and each ring's measured revolution time — the
// quantity the tier split trades (a hot revolution should be a small
// fraction of a cold one).
type TierStats struct {
	Tiers        int `json:"tiers"`
	HotNodes     int `json:"hot_nodes"`
	ColdNodes    int `json:"cold_nodes"`
	HotResident  int `json:"hot_resident"`  // fragments homed on the hot ring
	ColdResident int `json:"cold_resident"` // fragments homed on the cold ring

	Promotions      int64 `json:"promotions"`
	Demotions       int64 `json:"demotions"`
	FlashPromotions int64 `json:"flash_promotions"`
	RemoteFetches   int64 `json:"remote_fetches"`
	PendingReleases int64 `json:"pending_releases"`

	HotRevolutionMicros    int64 `json:"hot_revolution_micros"`
	ColdRevolutionMicros   int64 `json:"cold_revolution_micros"`
	LastFlashPromoteMicros int64 `json:"last_flash_promote_micros"`
}

// TierStats snapshots the runtime's tiering counters.
func (rtr *Router) TierStats() TierStats {
	s := TierStats{
		Tiers:           len(rtr.rings),
		Promotions:      atomic.LoadInt64(&rtr.promotions),
		Demotions:       atomic.LoadInt64(&rtr.demotions),
		FlashPromotions: atomic.LoadInt64(&rtr.flashPromotions),
		RemoteFetches:   atomic.LoadInt64(&rtr.remoteFetches),
	}
	s.LastFlashPromoteMicros = atomic.LoadInt64(&rtr.lastFlashNanos) / 1e3
	rtr.promMu.Lock()
	s.PendingReleases = int64(len(rtr.pendingRelease))
	rtr.promMu.Unlock()
	if rtr.single {
		s.ColdNodes = rtr.rings[0].Size()
		rtr.catMu.RLock()
		s.ColdResident = len(rtr.fragHome)
		rtr.catMu.RUnlock()
		s.ColdRevolutionMicros = rtr.rings[0].RevolutionTime().Microseconds()
		return s
	}
	s.HotNodes = rtr.rings[HotRing].Size()
	s.ColdNodes = rtr.rings[ColdRing].Size()
	rtr.catMu.RLock()
	for _, home := range rtr.fragHome {
		if home == HotRing {
			s.HotResident++
		} else {
			s.ColdResident++
		}
	}
	rtr.catMu.RUnlock()
	s.HotRevolutionMicros = rtr.rings[HotRing].RevolutionTime().Microseconds()
	s.ColdRevolutionMicros = rtr.rings[ColdRing].RevolutionTime().Microseconds()
	return s
}
