package live

// The hop scheduler batches outbound ring traffic. Without it, every
// fragment the runtime forwards costs one messenger send — one
// registered-region copy, one wire message, one receiver wakeup — and
// PR 4's fragmentation multiplied that count 16-64×. The scheduler
// instead parks outbound fragments in a per-node queue for a very short
// window and flushes them as one v3 batch envelope per neighbour hop:
// the interconnect sees few, large transfers (the regime the Data
// Cyclotron paper says the ring needs) while per-fragment latency pays
// at most the linger.
//
// The queue is an unbounded mutex-guarded slice, not a channel: the
// runtime calls SendData with the node lock held, so an enqueue that
// could block would deadlock against the flush loop. Backpressure
// exists anyway — queued bytes count into outBytes, which feeds
// QueueLoad and thus the runtime's LOIT adaptation, exactly as the
// per-send goroutines did before.

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/rdma"
)

// HopStats counts ring-hop transport work on one node (or summed over a
// ring): how many wire messages the node's forwards cost, how well
// batches filled, and how much circulation the LOI pacing suppressed.
type HopStats struct {
	// Msgs is the number of data wire messages sent (singles + batches).
	Msgs int64
	// Singles counts one-fragment messages (exact v2 envelopes).
	Singles int64
	// Batches counts multi-fragment v3 envelopes.
	Batches int64
	// Frags is the number of fragments forwarded (each batch counts its
	// entries), so Frags/Msgs is the mean hop fill.
	Frags int64
	// Fill is the batch fill histogram: messages carrying 1, 2, 3-4,
	// 5-8, 9-16, 17-32, 33-64, >64 fragments.
	Fill [8]int64
	// Bytes is the total data bytes sent; MaxMsg the largest single
	// message.
	Bytes  int64
	MaxMsg int64
	// Parked is the number of fragments currently held at their owner by
	// LOI pacing; ParkedTotal/Unparked count park and re-admit events.
	Parked      int
	ParkedTotal int64
	Unparked    int64
	// PoolAcquires/PoolWaits are the data messenger's send-region pool
	// counters: waits > 0 means concurrent sends outran the pool.
	PoolAcquires int64
	PoolWaits    int64
	// Backend names the wire engine carrying the data links ("tcp",
	// "uring", or "inproc"); BackendFallback is non-empty when a uring
	// selection degraded to tcp and says why (kernel probe or per-link
	// setup failure).
	Backend         string
	BackendFallback string
	// WireSyscalls/WireSubmits count syscall-layer work on the node's
	// data-link endpoints (out + in): write/read calls for the tcp
	// engine (a lower bound — netpoller wakeups come on top), or
	// io_uring_enter calls (and how many of them submitted SQEs) for
	// uring. WireSyscalls/Msgs is the syscalls-per-hop figure the
	// io_uring backend is gated on. Zero on the in-process transport.
	WireSyscalls int64
	WireSubmits  int64
	// CqeBatch histograms completions reaped per io_uring_enter (1, 2,
	// 3-4, 5-8, ..., >64 — same buckets as Fill): the right-heavier the
	// histogram, the more queued hops each syscall covered.
	CqeBatch [8]int64
	// WireSQPoll reports that at least one data-link endpoint ran an
	// SQPOLL send ring (kernel-thread submission, no enter per chain).
	// The syscalls-per-hop gate is tiered on this: without SQPOLL the
	// structural floor is ~1 enter to send + ~1 enter to receive each
	// message, which caps the achievable reduction against tcp.
	WireSQPoll bool
}

// fillBucket maps a batch entry count onto a Fill histogram index.
func fillBucket(frags int) int {
	switch {
	case frags <= 1:
		return 0
	case frags == 2:
		return 1
	case frags <= 4:
		return 2
	case frags <= 8:
		return 3
	case frags <= 16:
		return 4
	case frags <= 32:
		return 5
	case frags <= 64:
		return 6
	}
	return 7
}

// hopEntry is one queued outbound fragment: the ring header, the
// catalog version it travels under, and a reference on its cached wire
// bytes (held until the send completes, which is what makes handing the
// raw bytes to a vectored write safe).
type hopEntry struct {
	m   core.BATMsg
	ver int
	ent *wireEntry
}

// hopScheduler owns one node's outbound data queue and flush policy.
type hopScheduler struct {
	budget int           // flush when a batch would exceed this many wire bytes
	linger time.Duration // wait this long for co-resident fragments

	mu    sync.Mutex
	queue []hopEntry

	// wake (capacity 1) tells the flush loop the queue went non-empty.
	wake chan struct{}
}

func newHopScheduler(budget int, linger time.Duration) *hopScheduler {
	return &hopScheduler{
		budget: budget,
		linger: linger,
		wake:   make(chan struct{}, 1),
	}
}

// enqueue adds one outbound fragment. Called with n.mu held (lock order
// n.mu → hs.mu, the flush loop takes hs.mu only, so this cannot
// deadlock); never blocks.
func (hs *hopScheduler) enqueue(e hopEntry) {
	hs.mu.Lock()
	hs.queue = append(hs.queue, e)
	hs.mu.Unlock()
	select {
	case hs.wake <- struct{}{}:
	default:
	}
}

// take pops the next batch off the queue: up to maxHopBatchFrags
// entries whose combined batch wire size stays within budget. The first
// entry is always taken — an oversized fragment still has to travel,
// and it goes as a v2 single.
func (hs *hopScheduler) take() []hopEntry {
	hs.mu.Lock()
	defer hs.mu.Unlock()
	if len(hs.queue) == 0 {
		return nil
	}
	wire := batchHdrSize + batchEntryWire(len(hs.queue[0].ent.raw))
	n := 1
	for n < len(hs.queue) && n < maxHopBatchFrags {
		next := batchEntryWire(len(hs.queue[n].ent.raw))
		if wire+next > hs.budget {
			break
		}
		wire += next
		n++
	}
	batch := make([]hopEntry, n)
	copy(batch, hs.queue[:n])
	// Slide the remainder down; the backing array is reused.
	rest := copy(hs.queue, hs.queue[n:])
	for i := rest; i < len(hs.queue); i++ {
		hs.queue[i] = hopEntry{}
	}
	hs.queue = hs.queue[:rest]
	return batch
}

// hopLoop is the node's flush goroutine: it sleeps until fragments are
// queued, lingers briefly so co-resident fragments coalesce, and sends
// the queue as batch envelopes. On shutdown it drains the queue,
// releasing the wire-byte references the enqueues took.
func (n *Node) hopLoop(wg *sync.WaitGroup) {
	defer wg.Done()
	hs := n.hop
	for {
		select {
		case <-n.closed:
			n.drainHopQueue()
			return
		case <-hs.wake:
		}
		if hs.linger > 0 {
			t := time.NewTimer(hs.linger)
			select {
			case <-n.closed:
				t.Stop()
				n.drainHopQueue()
				return
			case <-t.C:
			}
		}
		for {
			batch := hs.take()
			if len(batch) == 0 {
				break
			}
			n.flushHopBatch(batch)
		}
	}
}

// drainHopQueue releases every queued entry without sending (shutdown).
func (n *Node) drainHopQueue() {
	hs := n.hop
	hs.mu.Lock()
	queue := hs.queue
	hs.queue = nil
	hs.mu.Unlock()
	for _, e := range queue {
		atomic.AddInt64(&n.outBytes, -int64(e.m.Size))
		e.ent.release()
	}
}

// flushHopBatch posts one batch to the wire and arranges for its
// entries to be released when the transport is done with them. A
// one-entry batch goes out as the exact v2 single-fragment message —
// the batched and unbatched configurations differ only when batching
// actually coalesced something, which is what makes HopBatchBytes=0
// byte-identical to the pre-batching ring.
//
// The sends are asynchronous (SendVectoredAsync / SendEncodedAsync):
// the flush loop keeps posting while earlier envelopes are still on
// the wire, so a revolution's worth of traffic pipelines through the
// messenger's bounded send window and the io_uring backend can fold
// the queued run into one submission chain per enter. The release of
// the wire-cache references moves into the completion callback — the
// payload slices stay pinned until the transport reports them written.
func (n *Node) flushHopBatch(batch []hopEntry) {
	release := func(error) {
		for _, e := range batch {
			atomic.AddInt64(&n.outBytes, -int64(e.m.Size))
			e.ent.release()
		}
	}
	select {
	case <-n.closed:
		release(nil)
		return
	default:
	}
	var wire int64
	if len(batch) == 1 {
		e := batch[0]
		wire = int64(dataHdrSize + len(e.ent.raw))
		n.countHopMsg(wire, 1)
		err := n.linkDataOut().SendEncodedAsync(int(wire), func(dst []byte) int {
			encodeDataHdr(dst, e.m, e.ver, len(e.ent.raw))
			return dataHdrSize + copy(dst[dataHdrSize:], e.ent.raw)
		}, release)
		if err != nil {
			release(err)
		}
		return
	}
	// The header block is per-batch (not a reused scratch buffer): with
	// pipelined sends several envelopes are in flight at once, and each
	// owns its headers until its completion callback runs.
	hdr := make([]byte, batchHdrSize+len(batch)*dataHdrSize)
	hdr[0], hdr[1], hdr[2], hdr[3] = envMagic0, envMagic1, envVersionBatch, envKindBatch
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(batch)))
	var zeros [8]byte
	parts := make([][]byte, 0, 1+2*len(batch))
	parts = append(parts, hdr)
	wire = int64(len(hdr))
	for i, e := range batch {
		encodeDataHdr(hdr[batchHdrSize+i*dataHdrSize:], e.m, e.ver, len(e.ent.raw))
		parts = append(parts, e.ent.raw)
		if pad := pad8(len(e.ent.raw)) - len(e.ent.raw); pad > 0 {
			parts = append(parts, zeros[:pad])
		}
		wire += int64(pad8(len(e.ent.raw)))
	}
	n.countHopMsg(wire, len(batch))
	if err := n.linkDataOut().SendVectoredAsync(parts, release); err != nil {
		release(err)
	}
}

// countHopMsg records one outbound data message of the given wire size
// carrying frags fragments. Shared by the scheduler and the legacy
// per-fragment path, so batched and unbatched runs expose comparable
// counters.
func (n *Node) countHopMsg(wire int64, frags int) {
	atomic.AddInt64(&n.hopMsgs, 1)
	atomic.AddInt64(&n.hopFrags, int64(frags))
	if frags > 1 {
		atomic.AddInt64(&n.hopBatchesSent, 1)
	} else {
		atomic.AddInt64(&n.hopSingles, 1)
	}
	atomic.AddInt64(&n.hopFill[fillBucket(frags)], 1)
	atomic.AddInt64(&n.hopBytes, wire)
	for {
		cur := atomic.LoadInt64(&n.maxHopBytes)
		if wire <= cur || atomic.CompareAndSwapInt64(&n.maxHopBytes, cur, wire) {
			break
		}
	}
}

// HopStats snapshots the node's hop-transport counters.
func (n *Node) HopStats() HopStats {
	var s HopStats
	s.Msgs = atomic.LoadInt64(&n.hopMsgs)
	s.Singles = atomic.LoadInt64(&n.hopSingles)
	s.Batches = atomic.LoadInt64(&n.hopBatchesSent)
	s.Frags = atomic.LoadInt64(&n.hopFrags)
	for i := range s.Fill {
		s.Fill[i] = atomic.LoadInt64(&n.hopFill[i])
	}
	s.Bytes = atomic.LoadInt64(&n.hopBytes)
	s.MaxMsg = atomic.LoadInt64(&n.maxHopBytes)
	n.mu.Lock()
	st := n.rt.Stats()
	s.Parked = n.rt.ParkedBATs()
	n.mu.Unlock()
	s.ParkedTotal = int64(st.BATsParked)
	s.Unparked = int64(st.BATsUnparked)
	s.PoolAcquires, s.PoolWaits = n.linkDataOut().PoolStats()
	s.Backend, s.BackendFallback = n.ring.backendInfo()
	// Each endpoint is counted at exactly one node (out at the sender,
	// in at the receiver), so the ring-wide sum has no double counting.
	for _, m := range []*rdma.Messenger{n.linkDataOut(), n.linkDataIn()} {
		if wc, ok := m.WireCounters(); ok {
			s.WireSyscalls += wc.Syscalls
			s.WireSubmits += wc.Submits
			for i := range s.CqeBatch {
				s.CqeBatch[i] += wc.CqeBatch[i]
			}
			s.WireSQPoll = s.WireSQPoll || wc.SQPoll
		}
	}
	return s
}

// HopStats sums the hop-transport counters over every node.
func (r *Ring) HopStats() HopStats {
	var total HopStats
	for _, n := range r.nodeList() {
		s := n.HopStats()
		total.Msgs += s.Msgs
		total.Singles += s.Singles
		total.Batches += s.Batches
		total.Frags += s.Frags
		for i := range total.Fill {
			total.Fill[i] += s.Fill[i]
		}
		total.Bytes += s.Bytes
		if s.MaxMsg > total.MaxMsg {
			total.MaxMsg = s.MaxMsg
		}
		total.Parked += s.Parked
		total.ParkedTotal += s.ParkedTotal
		total.Unparked += s.Unparked
		total.PoolAcquires += s.PoolAcquires
		total.PoolWaits += s.PoolWaits
		total.WireSyscalls += s.WireSyscalls
		total.WireSubmits += s.WireSubmits
		for i := range total.CqeBatch {
			total.CqeBatch[i] += s.CqeBatch[i]
		}
		total.WireSQPoll = total.WireSQPoll || s.WireSQPoll
	}
	total.Backend, total.BackendFallback = r.backendInfo()
	return total
}
