// Package dcopt implements the Data Cyclotron plan optimizer of §4.1:
// it rewrites a MAL plan produced by the SQL front-end, replacing each
// persistent-column sql.bind call with a datacyclotron.request call,
// injecting a datacyclotron.pin call immediately before the first use of
// the column, and a datacyclotron.unpin call right after its last use.
//
// The transformation is exactly the one illustrated by Table 1 → Table 2
// in the paper: request() registers interest and never blocks, pin()
// blocks the consuming dataflow thread until the BAT is locally
// available, and unpin() releases the memory-mapped region.
package dcopt

import (
	"fmt"

	"repro/internal/mal"
)

// Stats reports what the rewrite did.
type Stats struct {
	Requests int // sql.bind calls rewritten
	Pins     int
	Unpins   int
	// Fused counts pin+scan+unpin chains collapsed into one
	// datacyclotron.pinselect* instruction (each also implies a pin and
	// an unpin executed inside the fused operator).
	Fused int
}

// fusedScanOp maps a scan instruction onto its fused pin-form. A scan
// whose column argument is a pinned fragment stream can run per
// fragment as fragments arrive, instead of waiting for the whole
// column to be merged first.
var fusedScanOp = map[string]string{
	"algebra.select":   "pinselect",
	"algebra.selectEq": "pinselecteq",
	"algebra.selectNe": "pinselectne",
}

// Rewrite returns the Data Cyclotron form of p, leaving p untouched.
func Rewrite(p *mal.Plan) (*mal.Plan, Stats, error) {
	var st Stats

	// lastUse[v] = index of the last instruction consuming bind result v.
	lastUse := map[mal.VarID]int{}
	isBind := map[mal.VarID]bool{}
	for _, in := range p.Instrs {
		if in.Name() == "sql.bind" && len(in.Ret) == 1 {
			isBind[in.Ret[0]] = true
		}
	}
	for i, in := range p.Instrs {
		for _, a := range in.Args {
			if !a.IsLit() && isBind[a.Var] {
				lastUse[a.Var] = i
			}
		}
	}

	out := mal.Plan{Name: p.Name + "_dc", NVars: p.NVars, Result: p.Result}
	handle := map[mal.VarID]mal.VarID{} // bind var -> request handle var
	pinned := map[mal.VarID]bool{}
	newVar := func() mal.VarID {
		v := mal.VarID(out.NVars)
		out.NVars++
		return v
	}

	for i, in := range p.Instrs {
		if in.Name() == "sql.bind" && len(in.Ret) == 1 {
			// X := sql.bind(s,t,c)  =>  H := datacyclotron.request(s,t,c)
			h := newVar()
			handle[in.Ret[0]] = h
			out.Instrs = append(out.Instrs, mal.Instr{
				Module: "datacyclotron", Op: "request",
				Ret:  []mal.VarID{h},
				Args: in.Args,
			})
			st.Requests++
			continue
		}
		// Fusion: a scan that is both the first and the last use of a
		// bound column collapses into one datacyclotron.pinselect*
		// instruction. The fused operator pins the column's fragments as
		// they arrive (any order), scans each on a bounded pool, unpins
		// it, and merges the per-fragment results in fragment order —
		// Table 2's pin/op/unpin chain, minus the wait for the whole
		// column.
		if fused, ok := fusedScanOp[in.Name()]; ok && len(in.Ret) == 1 && len(in.Args) > 0 &&
			!in.Args[0].IsLit() && isBind[in.Args[0].Var] && !pinned[in.Args[0].Var] &&
			lastUse[in.Args[0].Var] == i && fusibleArgs(in.Args[1:], isBind) {
			x := in.Args[0].Var
			h, ok := handle[x]
			if !ok {
				return nil, st, fmt.Errorf("dcopt: X%d used before its bind", x)
			}
			args := append([]mal.Arg{mal.V(h)}, in.Args[1:]...)
			out.Instrs = append(out.Instrs, mal.Instr{
				Module: "datacyclotron", Op: fused,
				Ret:  in.Ret,
				Args: args,
			})
			pinned[x] = true
			delete(lastUse, x)
			st.Fused++
			continue
		}
		// Inject pins for first uses among this instruction's arguments.
		for _, a := range in.Args {
			if a.IsLit() || !isBind[a.Var] || pinned[a.Var] {
				continue
			}
			h, ok := handle[a.Var]
			if !ok {
				return nil, st, fmt.Errorf("dcopt: X%d used before its bind", a.Var)
			}
			out.Instrs = append(out.Instrs, mal.Instr{
				Module: "datacyclotron", Op: "pin",
				Ret:  []mal.VarID{a.Var}, // pin assigns the original variable
				Args: []mal.Arg{mal.V(h)},
			})
			pinned[a.Var] = true
			st.Pins++
		}
		out.Instrs = append(out.Instrs, in)
		// Inject unpins for variables whose last use was this instruction.
		for _, a := range in.Args {
			if a.IsLit() || !isBind[a.Var] {
				continue
			}
			if last, ok := lastUse[a.Var]; ok && last == i {
				out.Instrs = append(out.Instrs, mal.Instr{
					Module: "datacyclotron", Op: "unpin",
					Args: []mal.Arg{mal.V(a.Var)},
				})
				st.Unpins++
				delete(lastUse, a.Var)
			}
		}
	}
	return &out, st, nil
}

// fusibleArgs reports whether a scan's non-column arguments keep the
// fusion valid: literals and non-bind variables pass through; another
// bound column as a scan parameter would need its own pin and defeats
// the per-fragment form.
func fusibleArgs(args []mal.Arg, isBind map[mal.VarID]bool) bool {
	for _, a := range args {
		if !a.IsLit() && isBind[a.Var] {
			return false
		}
	}
	return true
}

// RequestedColumns lists the (schema, table, column) triples the
// rewritten plan will request, in plan order. Drivers use this to know a
// query's data needs up front.
func RequestedColumns(p *mal.Plan) [][3]string {
	var cols [][3]string
	for _, in := range p.Instrs {
		if in.Name() != "datacyclotron.request" && in.Name() != "sql.bind" {
			continue
		}
		if len(in.Args) < 3 {
			continue
		}
		var triple [3]string
		ok := true
		for i := 0; i < 3; i++ {
			if !in.Args[i].IsLit() {
				ok = false
				break
			}
			s, isStr := in.Args[i].Lit.(string)
			if !isStr {
				ok = false
				break
			}
			triple[i] = s
		}
		if ok {
			cols = append(cols, triple)
		}
	}
	return cols
}
