package dcopt

import (
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/bat"
	"repro/internal/mal"
	"repro/internal/minisql"
)

func compile(t *testing.T, src string) *mal.Plan {
	t.Helper()
	schema := minisql.MapSchema{
		"t": {"id", "name"},
		"c": {"t_id", "val"},
	}
	p, err := minisql.Compile(src, schema, "sys")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRewriteShape(t *testing.T) {
	p := compile(t, "select c.t_id from t, c where c.t_id = t.id")
	dc, st, err := Rewrite(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 2 || st.Pins != 2 || st.Unpins != 2 {
		t.Fatalf("stats = %+v, want 2/2/2", st)
	}
	text := dc.String()
	if strings.Contains(text, "sql.bind") {
		t.Fatal("rewritten plan still contains sql.bind")
	}
	for _, want := range []string{"datacyclotron.request", "datacyclotron.pin", "datacyclotron.unpin"} {
		if !strings.Contains(text, want) {
			t.Fatalf("plan missing %s:\n%s", want, text)
		}
	}
	// request must precede pin, pin must precede unpin for each column.
	reqIdx, pinIdx, unpinIdx := -1, -1, -1
	for i, in := range dc.Instrs {
		switch in.Name() {
		case "datacyclotron.request":
			if reqIdx == -1 {
				reqIdx = i
			}
		case "datacyclotron.pin":
			if pinIdx == -1 {
				pinIdx = i
			}
		case "datacyclotron.unpin":
			unpinIdx = i
		}
	}
	if !(reqIdx < pinIdx && pinIdx < unpinIdx) {
		t.Fatalf("ordering wrong: req=%d pin=%d unpin=%d", reqIdx, pinIdx, unpinIdx)
	}
}

func TestRewriteValidSSA(t *testing.T) {
	p := compile(t, "select name from t where id >= 2")
	dc, _, err := Rewrite(p)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild through a builder-less validation: run it; SSA violations
	// would have been caught by plan validation in minisql, here we just
	// ensure every pin assigns a variable exactly once by re-validating
	// manually.
	assigned := map[mal.VarID]int{}
	for _, in := range dc.Instrs {
		for _, r := range in.Ret {
			assigned[r]++
		}
	}
	for v, n := range assigned {
		if n != 1 {
			t.Fatalf("X%d assigned %d times", v, n)
		}
	}
}

// memDC is an immediate-delivery DC runtime for plan-level testing.
type memDC struct {
	mu       sync.Mutex
	cat      map[string]*bat.BAT
	requests []string
	pins     []string
	unpins   int
}

func (d *memDC) Request(schema, table, column string) (mal.Value, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	key := table + "." + column
	d.requests = append(d.requests, key)
	return key, nil
}

func (d *memDC) Pin(h mal.Value) (mal.Value, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	key := h.(string)
	d.pins = append(d.pins, key)
	b, ok := d.cat[key]
	if !ok {
		return nil, errors.New("BAT does not exist")
	}
	return b, nil
}

func (d *memDC) Unpin(h mal.Value) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.unpins++
	return nil
}

func TestRewrittenPlanExecutes(t *testing.T) {
	p := compile(t, "select c.t_id from t, c where c.t_id = t.id")
	dc, _, err := Rewrite(p)
	if err != nil {
		t.Fatal(err)
	}
	rt := &memDC{cat: map[string]*bat.BAT{
		"t.id":   bat.MakeInts("t.id", []int64{1, 2, 3, 4}),
		"c.t_id": bat.MakeInts("c.t_id", []int64{2, 2, 3, 9}),
	}}
	ctx := &mal.Context{Registry: mal.NewRegistry(), DC: rt, Workers: 4}
	v, err := mal.Run(ctx, dc)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, dc)
	}
	rs := v.(*mal.ResultSet)
	if rs.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", rs.NumRows())
	}
	if len(rt.requests) != 2 || len(rt.pins) != 2 || rt.unpins != 2 {
		t.Fatalf("DC calls: %d req, %d pin, %d unpin", len(rt.requests), len(rt.pins), rt.unpins)
	}
}

func TestRewriteMatchesOriginalResult(t *testing.T) {
	catalog := map[string]*bat.BAT{
		"t.id":   bat.MakeInts("t.id", []int64{1, 2, 3, 4}),
		"t.name": bat.MakeStrs("t.name", []string{"a", "b", "c", "d"}),
		"c.t_id": bat.MakeInts("c.t_id", []int64{2, 2, 3, 9}),
		"c.val":  bat.MakeInts("c.val", []int64{10, 20, 30, 40}),
	}
	bindCat := bindCatalog(catalog)
	for _, src := range []string{
		"select c.t_id from t, c where c.t_id = t.id",
		"select name from t where id >= 2",
		"select t.name, c.val from t, c where c.t_id = t.id and c.val > 15",
	} {
		p := compile(t, src)
		want, err := mal.Run(&mal.Context{Registry: mal.NewRegistry(), Catalog: bindCat}, p)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		dc, _, err := Rewrite(p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := mal.Run(&mal.Context{Registry: mal.NewRegistry(), DC: &memDC{cat: catalog}}, dc)
		if err != nil {
			t.Fatalf("%s (dc): %v", src, err)
		}
		if !reflect.DeepEqual(want.(*mal.ResultSet).Rows(), got.(*mal.ResultSet).Rows()) {
			t.Fatalf("%s: DC plan result differs", src)
		}
	}
}

type bindCatalog map[string]*bat.BAT

func (c bindCatalog) Bind(schema, table, column string) (mal.Value, error) {
	b, ok := c[table+"."+column]
	if !ok {
		return nil, errors.New("no such column")
	}
	return b, nil
}

func TestRequestedColumns(t *testing.T) {
	p := compile(t, "select c.t_id from t, c where c.t_id = t.id")
	dc, _, err := Rewrite(p)
	if err != nil {
		t.Fatal(err)
	}
	cols := RequestedColumns(dc)
	if len(cols) != 2 {
		t.Fatalf("cols = %v", cols)
	}
	seen := map[string]bool{}
	for _, c := range cols {
		seen[c[1]+"."+c[2]] = true
	}
	if !seen["t.id"] || !seen["c.t_id"] {
		t.Fatalf("missing columns: %v", cols)
	}
	// Works on unrewritten plans too (sql.bind form).
	if got := RequestedColumns(p); len(got) != 2 {
		t.Fatalf("bind-form cols = %v", got)
	}
}

// TestFusedScanRewrite: a select that is both first and last use of a
// bound column collapses into datacyclotron.pinselect, with no
// stand-alone pin/unpin left for that column.
func TestFusedScanRewrite(t *testing.T) {
	p := compile(t, "select name from t where id >= 2")
	dc, st, err := Rewrite(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Fused != 1 {
		t.Fatalf("fused = %d, want 1 (stats %+v)", st.Fused, st)
	}
	text := dc.String()
	if !strings.Contains(text, "datacyclotron.pinselect") {
		t.Fatalf("plan missing fused scan:\n%s", text)
	}
	// t.id is consumed entirely by the fused scan; t.name still needs a
	// plain pin (it feeds a join), so exactly one pin/unpin pair remains.
	if st.Pins != 1 || st.Unpins != 1 {
		t.Fatalf("pins/unpins = %d/%d, want 1/1:\n%s", st.Pins, st.Unpins, text)
	}
	if st.Requests != 2 {
		t.Fatalf("requests = %d, want 2", st.Requests)
	}
}

// fragDC is a FragmentedDC fake that splits every column into fragments
// and reports them to PinMap callbacks in REVERSE order, proving the
// merge is order-preserving regardless of arrival order.
type fragDC struct {
	memDC
	fragRows int
	pinMaps  int
}

func (d *fragDC) PinMap(h mal.Value, fn func(mal.Value) (mal.Value, error)) ([]mal.Value, error) {
	d.mu.Lock()
	d.pinMaps++
	b, ok := d.cat[h.(string)]
	d.mu.Unlock()
	if !ok {
		return nil, errors.New("BAT does not exist")
	}
	var frags []*bat.BAT
	for from := 0; from < b.Len(); from += d.fragRows {
		to := from + d.fragRows
		if to > b.Len() {
			to = b.Len()
		}
		frags = append(frags, b.Slice(from, to))
	}
	if len(frags) == 0 {
		frags = []*bat.BAT{b}
	}
	out := make([]mal.Value, len(frags))
	for i := len(frags) - 1; i >= 0; i-- { // adverse arrival order
		v, err := fn(frags[i])
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// TestFusedScanPerFragment runs a fused plan against the fragmented
// fake: results must equal the unfragmented bind-form execution even
// though fragments were scanned last-to-first.
func TestFusedScanPerFragment(t *testing.T) {
	catalog := map[string]*bat.BAT{
		"t.id":   bat.MakeInts("t.id", []int64{1, 2, 3, 4, 5, 6, 7}),
		"t.name": bat.MakeStrs("t.name", []string{"a", "b", "c", "d", "e", "f", "g"}),
		"c.t_id": bat.MakeInts("c.t_id", []int64{2, 2, 3, 9}),
		"c.val":  bat.MakeInts("c.val", []int64{10, 20, 30, 40}),
	}
	for _, src := range []string{
		"select name from t where id >= 3",
		"select val from c where t_id = 2",
	} {
		p := compile(t, src)
		want, err := mal.Run(&mal.Context{Registry: mal.NewRegistry(), Catalog: bindCatalog(catalog)}, p)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		dc, st, err := Rewrite(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Fused == 0 {
			t.Fatalf("%s: nothing fused", src)
		}
		rt := &fragDC{memDC: memDC{cat: catalog}, fragRows: 3}
		got, err := mal.Run(&mal.Context{Registry: mal.NewRegistry(), DC: rt}, dc)
		if err != nil {
			t.Fatalf("%s (fragmented): %v", src, err)
		}
		if !reflect.DeepEqual(want.(*mal.ResultSet).Rows(), got.(*mal.ResultSet).Rows()) {
			t.Fatalf("%s: per-fragment result differs:\nwant %v\ngot  %v",
				src, want.(*mal.ResultSet).Rows(), got.(*mal.ResultSet).Rows())
		}
		if rt.pinMaps != st.Fused {
			t.Fatalf("%s: %d PinMap calls for %d fused scans", src, rt.pinMaps, st.Fused)
		}
	}
}

// TestNoFusionWhenColumnReused: a column consumed by the select AND a
// later instruction keeps the plain pin/unpin form — fusing it would
// leave the later use without a pinned value.
func TestNoFusionWhenColumnReused(t *testing.T) {
	p := compile(t, "select id from t where id >= 2")
	dc, st, err := Rewrite(p)
	if err != nil {
		t.Fatal(err)
	}
	// id appears in both the predicate and the projection, so its select
	// is not the last use: the rewrite must keep the plain pin.
	if st.Fused != 0 {
		t.Fatalf("fused a reused column (stats %+v):\n%s", st, dc)
	}
	if !strings.Contains(dc.String(), "datacyclotron.pin") {
		t.Fatalf("reused column lost its pin:\n%s", dc)
	}
	rt := &fragDC{memDC: memDC{cat: map[string]*bat.BAT{
		"t.id":   bat.MakeInts("t.id", []int64{1, 2, 3, 4}),
		"t.name": bat.MakeStrs("t.name", []string{"a", "b", "c", "d"}),
	}}, fragRows: 2}
	got, err := mal.Run(&mal.Context{Registry: mal.NewRegistry(), DC: rt}, dc)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, dc)
	}
	if got.(*mal.ResultSet).NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", got.(*mal.ResultSet).NumRows())
	}
}

func TestRewritePlanWithoutBinds(t *testing.T) {
	b := mal.NewBuilder("nobind")
	x := b.Emit("sql", "scalarResult", mal.L("v"), mal.L(int64(1)))
	b.SetResult(x)
	p := b.MustBuild()
	dc, st, err := Rewrite(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 0 || len(dc.Instrs) != len(p.Instrs) {
		t.Fatalf("no-op rewrite changed plan: %+v", st)
	}
}
