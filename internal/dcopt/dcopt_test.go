package dcopt

import (
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/bat"
	"repro/internal/mal"
	"repro/internal/minisql"
)

func compile(t *testing.T, src string) *mal.Plan {
	t.Helper()
	schema := minisql.MapSchema{
		"t": {"id", "name"},
		"c": {"t_id", "val"},
	}
	p, err := minisql.Compile(src, schema, "sys")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRewriteShape(t *testing.T) {
	p := compile(t, "select c.t_id from t, c where c.t_id = t.id")
	dc, st, err := Rewrite(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 2 || st.Pins != 2 || st.Unpins != 2 {
		t.Fatalf("stats = %+v, want 2/2/2", st)
	}
	text := dc.String()
	if strings.Contains(text, "sql.bind") {
		t.Fatal("rewritten plan still contains sql.bind")
	}
	for _, want := range []string{"datacyclotron.request", "datacyclotron.pin", "datacyclotron.unpin"} {
		if !strings.Contains(text, want) {
			t.Fatalf("plan missing %s:\n%s", want, text)
		}
	}
	// request must precede pin, pin must precede unpin for each column.
	reqIdx, pinIdx, unpinIdx := -1, -1, -1
	for i, in := range dc.Instrs {
		switch in.Name() {
		case "datacyclotron.request":
			if reqIdx == -1 {
				reqIdx = i
			}
		case "datacyclotron.pin":
			if pinIdx == -1 {
				pinIdx = i
			}
		case "datacyclotron.unpin":
			unpinIdx = i
		}
	}
	if !(reqIdx < pinIdx && pinIdx < unpinIdx) {
		t.Fatalf("ordering wrong: req=%d pin=%d unpin=%d", reqIdx, pinIdx, unpinIdx)
	}
}

func TestRewriteValidSSA(t *testing.T) {
	p := compile(t, "select name from t where id >= 2")
	dc, _, err := Rewrite(p)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild through a builder-less validation: run it; SSA violations
	// would have been caught by plan validation in minisql, here we just
	// ensure every pin assigns a variable exactly once by re-validating
	// manually.
	assigned := map[mal.VarID]int{}
	for _, in := range dc.Instrs {
		for _, r := range in.Ret {
			assigned[r]++
		}
	}
	for v, n := range assigned {
		if n != 1 {
			t.Fatalf("X%d assigned %d times", v, n)
		}
	}
}

// memDC is an immediate-delivery DC runtime for plan-level testing.
type memDC struct {
	mu       sync.Mutex
	cat      map[string]*bat.BAT
	requests []string
	pins     []string
	unpins   int
}

func (d *memDC) Request(schema, table, column string) (mal.Value, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	key := table + "." + column
	d.requests = append(d.requests, key)
	return key, nil
}

func (d *memDC) Pin(h mal.Value) (mal.Value, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	key := h.(string)
	d.pins = append(d.pins, key)
	b, ok := d.cat[key]
	if !ok {
		return nil, errors.New("BAT does not exist")
	}
	return b, nil
}

func (d *memDC) Unpin(h mal.Value) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.unpins++
	return nil
}

func TestRewrittenPlanExecutes(t *testing.T) {
	p := compile(t, "select c.t_id from t, c where c.t_id = t.id")
	dc, _, err := Rewrite(p)
	if err != nil {
		t.Fatal(err)
	}
	rt := &memDC{cat: map[string]*bat.BAT{
		"t.id":   bat.MakeInts("t.id", []int64{1, 2, 3, 4}),
		"c.t_id": bat.MakeInts("c.t_id", []int64{2, 2, 3, 9}),
	}}
	ctx := &mal.Context{Registry: mal.NewRegistry(), DC: rt, Workers: 4}
	v, err := mal.Run(ctx, dc)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, dc)
	}
	rs := v.(*mal.ResultSet)
	if rs.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", rs.NumRows())
	}
	if len(rt.requests) != 2 || len(rt.pins) != 2 || rt.unpins != 2 {
		t.Fatalf("DC calls: %d req, %d pin, %d unpin", len(rt.requests), len(rt.pins), rt.unpins)
	}
}

func TestRewriteMatchesOriginalResult(t *testing.T) {
	catalog := map[string]*bat.BAT{
		"t.id":   bat.MakeInts("t.id", []int64{1, 2, 3, 4}),
		"t.name": bat.MakeStrs("t.name", []string{"a", "b", "c", "d"}),
		"c.t_id": bat.MakeInts("c.t_id", []int64{2, 2, 3, 9}),
		"c.val":  bat.MakeInts("c.val", []int64{10, 20, 30, 40}),
	}
	bindCat := bindCatalog(catalog)
	for _, src := range []string{
		"select c.t_id from t, c where c.t_id = t.id",
		"select name from t where id >= 2",
		"select t.name, c.val from t, c where c.t_id = t.id and c.val > 15",
	} {
		p := compile(t, src)
		want, err := mal.Run(&mal.Context{Registry: mal.NewRegistry(), Catalog: bindCat}, p)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		dc, _, err := Rewrite(p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := mal.Run(&mal.Context{Registry: mal.NewRegistry(), DC: &memDC{cat: catalog}}, dc)
		if err != nil {
			t.Fatalf("%s (dc): %v", src, err)
		}
		if !reflect.DeepEqual(want.(*mal.ResultSet).Rows(), got.(*mal.ResultSet).Rows()) {
			t.Fatalf("%s: DC plan result differs", src)
		}
	}
}

type bindCatalog map[string]*bat.BAT

func (c bindCatalog) Bind(schema, table, column string) (mal.Value, error) {
	b, ok := c[table+"."+column]
	if !ok {
		return nil, errors.New("no such column")
	}
	return b, nil
}

func TestRequestedColumns(t *testing.T) {
	p := compile(t, "select c.t_id from t, c where c.t_id = t.id")
	dc, _, err := Rewrite(p)
	if err != nil {
		t.Fatal(err)
	}
	cols := RequestedColumns(dc)
	if len(cols) != 2 {
		t.Fatalf("cols = %v", cols)
	}
	seen := map[string]bool{}
	for _, c := range cols {
		seen[c[1]+"."+c[2]] = true
	}
	if !seen["t.id"] || !seen["c.t_id"] {
		t.Fatalf("missing columns: %v", cols)
	}
	// Works on unrewritten plans too (sql.bind form).
	if got := RequestedColumns(p); len(got) != 2 {
		t.Fatalf("bind-form cols = %v", got)
	}
}

func TestRewritePlanWithoutBinds(t *testing.T) {
	b := mal.NewBuilder("nobind")
	x := b.Emit("sql", "scalarResult", mal.L("v"), mal.L(int64(1)))
	b.SetResult(x)
	p := b.MustBuild()
	dc, st, err := Rewrite(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 0 || len(dc.Instrs) != len(p.Instrs) {
		t.Fatalf("no-op rewrite changed plan: %+v", st)
	}
}
