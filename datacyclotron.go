// Package datacyclotron is the public API of this reproduction of
// "The Data Cyclotron Query Processing Scheme" (Goncalves & Kersten,
// EDBT 2010).
//
// The Data Cyclotron turns continuous data movement into the organizing
// principle of distributed query processing: the hot set circulates
// around a storage ring of main memories; queries settle anywhere,
// announce interest in data fragments (BATs), and pick them up as they
// flow past. Fragments carry a level of interest (LOI); owners evict
// fragments whose LOI falls below an adaptive threshold (LOIT).
//
// Two ways to use the library:
//
//   - Simulation (the paper's evaluation vehicle): build a SimCluster,
//     add fragments and queries, run the discrete-event simulation, and
//     read the recorded metrics. The experiment harnesses behind every
//     figure/table of the paper are exposed through RunExperiment.
//
//   - Live ring: build a LiveRing over real columnar data; submit SQL
//     to any node; plans are compiled, rewritten into request/pin/unpin
//     form by the DC optimizer, and executed with fragments flowing
//     through the emulated-RDMA ring.
//
// See README.md for a tour and DESIGN.md for the system inventory.
package datacyclotron

import (
	"fmt"

	"repro/internal/bat"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dcclient"
	"repro/internal/dcopt"
	"repro/internal/experiments"
	"repro/internal/live"
	"repro/internal/mal"
	"repro/internal/membership"
	"repro/internal/minisql"
	"repro/internal/server"
)

// Re-exported types: the simulation surface.
type (
	// SimCluster is a simulated Data Cyclotron ring (see
	// internal/cluster for the full method set).
	SimCluster = cluster.Cluster
	// SimConfig configures a simulated ring.
	SimConfig = cluster.Config
	// SimMetrics holds everything a simulation records.
	SimMetrics = cluster.Metrics
	// BATSpec declares one data fragment in a simulation.
	BATSpec = cluster.BATSpec
	// QuerySpec declares one simulated query.
	QuerySpec = cluster.QuerySpec
	// Step is one pin+process step of a simulated query.
	Step = cluster.Step
	// CoreConfig tunes the per-node DC runtime (LOIT levels,
	// watermarks, loadAll period, resend timeout).
	CoreConfig = core.Config
	// NodeID identifies a ring node.
	NodeID = core.NodeID
	// BATID identifies a fragment.
	BATID = core.BATID
	// QueryID identifies a query.
	QueryID = core.QueryID
)

// Re-exported types: the live-ring surface.
type (
	// LiveRing is a running Data Cyclotron over real data.
	LiveRing = live.Ring
	// LiveNode is one live ring participant.
	LiveNode = live.Node
	// LiveConfig configures a live ring.
	LiveConfig = live.Config
	// BAT is a binary association table (a column fragment).
	BAT = bat.BAT
	// ResultSet is a tabular query result.
	ResultSet = mal.ResultSet
	// Plan is a MAL query plan.
	Plan = mal.Plan
	// Schema describes tables for the SQL front-end.
	Schema = minisql.Schema
	// MapSchema is the trivial in-memory Schema.
	MapSchema = minisql.MapSchema
	// CacheMode selects the hot-set fragment cache eviction policy
	// (LiveConfig.CacheMode).
	CacheMode = live.CacheMode
	// LiveCacheStats snapshots hot-set cache and ring-wait counters of
	// a live node (LiveNode.CacheStats) or a whole ring
	// (LiveRing.CacheStats).
	LiveCacheStats = live.CacheStats
	// LiveHopStats snapshots hop-transport counters — wire messages,
	// batch fill, LOI-pacing park state — of a live node
	// (LiveNode.HopStats) or a whole ring (LiveRing.HopStats).
	LiveHopStats = live.HopStats
	// LiveMembershipStats snapshots the elastic-membership state —
	// view version, liveness counts, replica health, failovers — of a
	// live node (LiveNode.MembershipStats) or a whole ring
	// (LiveRing.MembershipStats).
	LiveMembershipStats = live.MembershipStats
	// HeartbeatConfig tunes the ring's failure detector
	// (LiveConfig.Heartbeat; consulted when LiveConfig.Replicas > 0).
	HeartbeatConfig = membership.Config
	// JoinReport describes one runtime ring growth (LiveRing.Join):
	// the admitted node, its splice-in neighbours, and how much of its
	// fragment share the rebalancing transfer actually moved.
	JoinReport = live.JoinReport
	// Router is a routed multi-ring runtime: a small fast hot ring for
	// the working set and a wide cold ring for everything else, with
	// LOI-driven fragment migration between them.
	Router = live.Router
	// RouterConfig configures a routed runtime (tier count, ring sizes,
	// promotion/demotion heat thresholds, flash-crowd trigger).
	RouterConfig = live.RouterConfig
	// RingID names one ring of a routed runtime.
	RingID = live.RingID
	// TierStats snapshots a routed runtime's tiering counters
	// (residency, promotions, demotions, flash promotions).
	TierStats = live.TierStats
)

// Ring identities of a two-tier routed runtime.
const (
	// HotRing is the small fast ring (short revolution, caches on).
	HotRing = live.HotRing
	// ColdRing is the wide slow ring (batched hops, parked-by-default).
	ColdRing = live.ColdRing
)

// Hot-set cache eviction policies (LiveConfig.CacheMode). The cache
// itself is budgeted by LiveConfig.CacheBytes; 0 disables it and every
// pin waits for ring circulation.
const (
	// CacheLOI evicts by level of interest: hits raise an entry's
	// score, eviction scans decay all scores, lowest goes first.
	CacheLOI = live.CacheLOI
	// CacheLRU evicts by pure recency (comparison baseline).
	CacheLRU = live.CacheLRU
)

// Re-exported types: the network query service.
type (
	// QueryServer serves a live ring over TCP: one listener per node,
	// admission control, a plan cache, and graceful drain.
	QueryServer = server.Server
	// ServerConfig tunes the query service.
	ServerConfig = server.Config
	// ServerNodeStats snapshots one served node's counters.
	ServerNodeStats = server.NodeStats
	// QueryClient is the pooled network client for a served node.
	QueryClient = dcclient.Client
	// ClientConfig tunes a query client.
	ClientConfig = dcclient.Config
)

// Serve starts the network query service in front of a live ring: one
// TCP listener per node speaking the length-prefixed binary protocol.
func Serve(r *LiveRing, cfg ServerConfig) (*QueryServer, error) {
	return server.Serve(r, cfg)
}

// DefaultServerConfig suits loopback serving.
func DefaultServerConfig() ServerConfig { return server.DefaultConfig() }

// Dial connects a query client to one served node.
func Dial(addr string) (*QueryClient, error) { return dcclient.Dial(addr) }

// NewSimCluster builds a simulated ring.
func NewSimCluster(cfg SimConfig) *SimCluster { return cluster.New(cfg) }

// DefaultSimConfig mirrors the paper's base topology: 10 nodes,
// 10 Gb/s links, 350 µs delay, 200 MB BAT queues.
func DefaultSimConfig() SimConfig { return cluster.DefaultConfig() }

// DefaultCoreConfig mirrors the paper's runtime settings (LOIT levels
// 0.1/0.6/1.1 with 40 %/80 % watermarks).
func DefaultCoreConfig() CoreConfig { return core.DefaultConfig() }

// NewLiveRing builds a live ring of n nodes over the given columns
// (keyed "table.column"), partitioned round-robin.
func NewLiveRing(n int, columns map[string]*BAT, schema Schema, cfg LiveConfig) (*LiveRing, error) {
	return live.NewRing(n, columns, schema, cfg)
}

// DefaultLiveConfig suits in-process live rings.
func DefaultLiveConfig() LiveConfig { return live.DefaultConfig() }

// NewRouter builds a routed multi-ring runtime over the given columns:
// data starts on the cold ring and migrates to the hot ring as query
// heat concentrates on it. RouterConfig.Tiers < 2 degenerates to a
// single plain ring behind the same API.
func NewRouter(columns map[string]*BAT, schema Schema, cfg RouterConfig) (*Router, error) {
	return live.NewRouter(columns, schema, cfg)
}

// DefaultRouterConfig suits in-process two-tier runtimes.
func DefaultRouterConfig() RouterConfig { return live.DefaultRouterConfig() }

// ServeRouter starts the network query service in front of a routed
// runtime: one TCP listener per node of every ring, hot ring first,
// with the handshake labelling each address's ring so clients can
// prefer same-ring failover targets.
func ServeRouter(rtr *Router, cfg ServerConfig) (*QueryServer, error) {
	return server.ServeRouter(rtr, cfg)
}

// CompileSQL compiles a SELECT statement against schema into a MAL plan
// (sql.bind form, as MonetDB's front-end would emit it).
func CompileSQL(sql string, schema Schema) (*Plan, error) {
	return minisql.Compile(sql, schema, "sys")
}

// RewriteDC applies the Data Cyclotron optimizer (§4.1): sql.bind →
// datacyclotron.request plus pin/unpin injection.
func RewriteDC(p *Plan) (*Plan, error) {
	out, _, err := dcopt.Rewrite(p)
	return out, err
}

// Columns helpers for building live rings quickly.

// MakeInts builds an integer column fragment.
func MakeInts(name string, vals []int64) *BAT { return bat.MakeInts(name, vals) }

// MakeFloats builds a float column fragment.
func MakeFloats(name string, vals []float64) *BAT { return bat.MakeFloats(name, vals) }

// MakeStrs builds a string column fragment.
func MakeStrs(name string, vals []string) *BAT { return bat.MakeStrs(name, vals) }

// ExperimentIDs lists the reproducible figures/tables in run order.
func ExperimentIDs() []string {
	return []string{"fig1", "fig6", "fig7", "fig8", "fig9", "table4", "fig10", "fig11"}
}

// RunExperiment regenerates one of the paper's tables/figures and
// returns a printable report. scale 1.0 reproduces the paper's workload
// volume; smaller fractions shrink the firing window proportionally.
// fig6 and fig7 share a harness (one §5.1 run produces both), as do
// fig10 and fig11.
func RunExperiment(id string, scale float64, seed int64) (fmt.Stringer, error) {
	s := experiments.Scale(scale)
	switch id {
	case "fig1":
		return experiments.CPUBreakdown(), nil
	case "fig6", "fig7", "fig6a", "fig6b", "fig7a", "fig7b":
		return experiments.LimitedRingCapacity(s, seed), nil
	case "fig8", "fig8a", "fig8b":
		return experiments.SkewedWorkloads(s, seed), nil
	case "fig9", "fig9a", "fig9b":
		return experiments.GaussianWorkload(s, seed), nil
	case "table4":
		return experiments.TPCH(s, seed, 8), nil
	case "fig10", "fig11":
		return experiments.RingSizeSweep(s, seed, nil), nil
	}
	return nil, fmt.Errorf("datacyclotron: unknown experiment %q (have %v)", id, ExperimentIDs())
}
