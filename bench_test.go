package datacyclotron

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/bat"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/tpch"
	"repro/internal/workload"
)

// One benchmark per table/figure of the paper. Each iteration runs the
// corresponding experiment harness at a reduced workload scale (the
// topology, dataset, and dynamics stay at paper values; only the query
// volume shrinks). Run `go run ./cmd/dcsim -exp all` for the
// full-volume reproduction.

const benchScale = experiments.Scale(0.05)

func BenchmarkFig1CPUModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if res := experiments.CPUBreakdown(); len(res.Rows) != 3 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkFig6aThroughput covers Figure 6a (and 6b/7, which share the
// §5.1 run): the static-LOIT sweep. One iteration = 11 simulated runs.
func BenchmarkFig6aThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.LimitedRingCapacity(benchScale, 1)
		if len(res.Runs) != 11 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkFig6bLifetime isolates one LOIT level and reports the query
// lifetime statistics of Figure 6b.
func BenchmarkFig6bLifetime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := singleLOITRun(0.1, 1)
		if res.Metrics().Lifetime.Count() == 0 {
			b.Fatal("no lifetimes")
		}
	}
}

// BenchmarkFig7RingLoad measures the §5.1 scenario that produces the
// ring-load series of Figures 7a/7b.
func BenchmarkFig7RingLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := singleLOITRun(0.5, 1)
		if res.Metrics().RingBytes.Len() == 0 {
			b.Fatal("no ring series")
		}
	}
}

func BenchmarkFig8Skewed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.SkewedWorkloads(experiments.Scale(0.1), 2)
		if res.FinishedBySW["sw1"] == nil {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkFig9Gaussian(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.GaussianWorkload(experiments.Scale(0.1), 3)
		if res.Touches.Total() == 0 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkTable4TPCH runs the TPC-H trace on rings of 1..4 nodes.
func BenchmarkTable4TPCH(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.TPCH(experiments.Scale(0.05), 4, 4)
		if len(res.Rows) != 5 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkFig10MaxLatency and BenchmarkFig11MaxCycles share the §6.3
// ring-size sweep.
func BenchmarkFig10MaxLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RingSizeSweep(experiments.Scale(0.05), 5, []int{5, 10})
		if len(res.Runs) != 2 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkFig11MaxCycles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RingSizeSweep(experiments.Scale(0.05), 5, []int{15, 20})
		if len(res.Runs) != 2 {
			b.Fatal("bad result")
		}
	}
}

// singleLOITRun is one §5.1 iteration at a fixed threshold.
func singleLOITRun(loit float64, seed int64) *cluster.Cluster {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 10
	cfg.Core.LOITLevels = []float64{loit}
	cfg.Core.AdaptiveLOIT = false
	c := cluster.New(cfg)
	rng := rand.New(rand.NewSource(seed))
	ds := workload.DefaultDataset(10)
	owners := workload.Populate(c, ds.Build(rng))
	syn := workload.DefaultSynthetic(10)
	syn.Duration = 3 * time.Second
	specs := syn.Build(rng, owners)
	workload.Submit(c, specs)
	c.Run(5 * time.Minute)
	return c
}

// --- ablation benches for the design decisions DESIGN.md calls out ---

// BenchmarkAblationStaticVsAdaptiveLOIT compares the static threshold
// of §5.1 against the watermark-driven adaptation of §5.2 on the same
// turbulent workload; the adaptive runtime should finish the stream in
// fewer simulated seconds.
func BenchmarkAblationStaticVsAdaptiveLOIT(b *testing.B) {
	run := func(adaptive bool) time.Duration {
		cfg := cluster.DefaultConfig()
		cfg.Nodes = 10
		if adaptive {
			cfg.Core.LOITLevels = []float64{0.1, 0.6, 1.1}
			cfg.Core.AdaptiveLOIT = true
		} else {
			cfg.Core.LOITLevels = []float64{0.1}
			cfg.Core.AdaptiveLOIT = false
		}
		c := cluster.New(cfg)
		rng := rand.New(rand.NewSource(7))
		ds := workload.DefaultDataset(10)
		owners := workload.Populate(c, ds.Build(rng))
		syn := workload.DefaultSynthetic(10)
		syn.Duration = 3 * time.Second
		specs := syn.Build(rng, owners)
		workload.Submit(c, specs)
		return c.Run(10 * time.Minute)
	}
	b.Run("static0.1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.ReportMetric(run(false).Seconds(), "simsec/op")
		}
	})
	b.Run("adaptive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.ReportMetric(run(true).Seconds(), "simsec/op")
		}
	})
}

// BenchmarkAblationParallelQueries compares serial queries against the
// §6.1 intra-query split on identical step lists.
func BenchmarkAblationParallelQueries(b *testing.B) {
	run := func(parallel bool) float64 {
		cfg := cluster.DefaultConfig()
		cfg.Nodes = 4
		c := cluster.New(cfg)
		for i := 0; i < 32; i++ {
			c.AddBAT(cluster.BATSpec{ID: core.BATID(i), Size: 1 << 20, Owner: core.NodeID(i % 4)})
		}
		rng := rand.New(rand.NewSource(3))
		for q := 0; q < 50; q++ {
			var steps []cluster.Step
			for j := 0; j < 6; j++ {
				bid := core.BATID(rng.Intn(32))
				steps = append(steps, cluster.Step{BAT: bid, Proc: 100 * time.Millisecond})
			}
			spec := cluster.QuerySpec{ID: core.QueryID(q), Node: core.NodeID(q % 4),
				Arrival: time.Duration(q) * 50 * time.Millisecond, Steps: steps}
			if parallel {
				c.SubmitParallel(spec, 3)
			} else {
				c.Submit(spec)
			}
		}
		c.Run(10 * time.Minute)
		return c.Metrics().Lifetime.Mean()
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.ReportMetric(run(false), "meanlife-sec")
		}
	})
	b.Run("parallel3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.ReportMetric(run(true), "meanlife-sec")
		}
	})
}

// BenchmarkAblationRequestAbsorption quantifies the anti-clockwise
// request-combining of §4.2.2: with many nodes wanting the same BATs,
// most upstream requests are absorbed before reaching the owner.
func BenchmarkAblationRequestAbsorption(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := cluster.DefaultConfig()
		cfg.Nodes = 10
		c := cluster.New(cfg)
		for j := 0; j < 20; j++ {
			c.AddBAT(cluster.BATSpec{ID: core.BATID(j), Size: 1 << 20, Owner: core.NodeID(j % 10)})
		}
		// Every node asks for the same hot fragment.
		for q := 0; q < 100; q++ {
			node := core.NodeID(q % 10)
			bid := core.BATID(11) // owned by node 1
			if node == 1 {
				bid = 12
			}
			c.Submit(cluster.QuerySpec{ID: core.QueryID(q), Node: node,
				Arrival: time.Duration(q) * time.Millisecond,
				Steps:   []cluster.Step{{BAT: bid, Proc: 10 * time.Millisecond}}})
		}
		c.Run(time.Minute)
		absorbed := uint64(0)
		for n := 0; n < 10; n++ {
			absorbed += c.Node(n).Stats().RequestsAbsorbed
		}
		b.ReportMetric(float64(absorbed), "absorbed/op")
	}
}

// BenchmarkTPCHMix measures trace generation alone (workload synthesis
// cost, not simulation).
func BenchmarkTPCHMix(b *testing.B) {
	cat := tpch.BuildCatalog(5, 8)
	w := tpch.DefaultWorkload(8)
	w.QueriesPerNode = 100
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if specs := w.Build(rng, cat); len(specs) != 800 {
			b.Fatal("bad workload")
		}
	}
}

// BenchmarkBATQueryPipeline runs a realistic 1M-row operator chain
// through the public kernel API — range select, positional fetch join,
// grouped sum — the shape every live-ring query and TPC-H trace replay
// reduces to. Companion microbenchmarks (typed vs boxed, sorted vs
// unsorted) live in internal/bat.
func BenchmarkBATQueryPipeline(b *testing.B) {
	const n = 1 << 20
	rng := rand.New(rand.NewSource(4))
	dates := make([]int64, n)
	keys := make([]int64, n)
	qty := make([]float64, n)
	for i := 0; i < n; i++ {
		dates[i] = int64(19920000 + rng.Intn(70000))
		keys[i] = int64(rng.Intn(100))
		qty[i] = float64(rng.Intn(50))
	}
	dateCol := bat.MakeInts("l_shipdate", dates)
	keyCol := bat.MakeInts("l_key", keys)
	qtyCol := bat.MakeFloats("l_qty", qty)
	lo := &bat.Bound{Value: int64(19940101), Inclusive: true}
	hi := &bat.Bound{Value: int64(19950101), Inclusive: false}
	rest := func(sel *bat.BAT) {
		pos := sel.MarkT(0).Reverse()     // [newPos | origPos]
		k := pos.Join(keyCol)             // fetch keys   [newPos | key]
		v := pos.Join(qtyCol)             // fetch values [newPos | qty]
		groups, _ := k.GroupIDs()         // group by key
		sums := bat.GroupedSum(groups, v) // per-group sums
		if sums.Len() != 100 {
			b.Fatal("bad group count")
		}
	}
	b.Run("whole-column", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rest(dateCol.Select(lo, hi)) // qualifying rows [origPos | date]
		}
	})
	// The live ring's fragmented scan path: the select runs per 64K-row
	// fragment (as fragments would arrive from the ring) and the pieces
	// concatenate in fragment order before the downstream chain.
	b.Run("per-fragment", func(b *testing.B) {
		const fragRows = 64 << 10
		var frags []*bat.BAT
		for from := 0; from < n; from += fragRows {
			frags = append(frags, dateCol.Slice(from, from+fragRows))
		}
		b.ReportAllocs()
		b.ResetTimer()
		parts := make([]*bat.BAT, len(frags))
		for i := 0; i < b.N; i++ {
			for j, f := range frags {
				parts[j] = f.Select(lo, hi)
			}
			rest(bat.Concat(parts))
		}
	})
}

// BenchmarkSimulatedSecondThroughput reports how fast the event kernel
// simulates the paper's base scenario (virtual seconds per wall second).
func BenchmarkSimulatedSecondThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		start := time.Now()
		c := singleLOITRun(0.5, 9)
		wall := time.Since(start).Seconds()
		virtual := float64(c.Sim().Now()) / float64(time.Second)
		b.ReportMetric(virtual/wall, "simsec/wallsec")
	}
}
