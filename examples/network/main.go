// Example network: serve a live ring over TCP and query it with the
// pooled client — the library-level tour of the query service
// (cmd/dcserve and cmd/dcload are the operational versions).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	dc "repro"
)

func main() {
	// A tiny database partitioned over a 3-node live ring.
	columns := map[string]*dc.BAT{
		"sensor.id":      dc.MakeInts("sensor.id", []int64{1, 2, 3, 4, 5, 6}),
		"sensor.reading": dc.MakeFloats("sensor.reading", []float64{20.5, 21.0, 19.8, 35.2, 20.1, 36.7}),
		"sensor.room":    dc.MakeStrs("sensor.room", []string{"lab", "lab", "hall", "oven", "hall", "oven"}),
	}
	schema := dc.MapSchema{"sensor": {"id", "reading", "room"}}
	ring, err := dc.NewLiveRing(3, columns, schema, dc.DefaultLiveConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer ring.Close()

	// The network front door: one TCP listener per node, with admission
	// control and a plan cache.
	cfg := dc.DefaultServerConfig()
	cfg.MaxInFlight = 4
	srv, err := dc.Serve(ring, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Println("serving nodes at:", srv.Addrs())

	// Dial node 1 and run SQL over the wire with a deadline. The result
	// travels back in the same serialization fragments use on the ring.
	client, err := dc.Dial(srv.Addr(1))
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	rs, err := client.Query(ctx, "select room, count(*) from sensor where reading >= 21.0 group by room order by room")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rs)

	// The second run of the same text hits the plan cache.
	if _, err := client.Query(ctx, "select room, count(*) from sensor where reading >= 21.0 group by room order by room"); err != nil {
		log.Fatal(err)
	}
	st := srv.Stats(1)
	fmt.Printf("node 1 after 2 queries: %s\n", st)
}
