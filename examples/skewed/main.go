// Skewed workloads: the §5.2 turbulence experiment on the simulated
// ring. Four skewed workloads (Table 3) enter and leave the system;
// the Data Cyclotron swaps their disjoint hot sets in and out of the
// ring while keeping throughput high — watch the per-hot-set ring
// space react to every workload change.
package main

import (
	"fmt"
	"log"

	dc "repro"
)

func main() {
	// Scale 0.5 halves the Table-3 schedule to keep the demo snappy;
	// pass 1.0 for the paper's full 97.5 s scenario.
	res, err := dc.RunExperiment("fig8", 0.5, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
	fmt.Println("Things to notice (cf. §5.2):")
	fmt.Println(" - dh2 space appears right when SW2 starts, while dh1 lingers")
	fmt.Println("   until SW1's last queries finish (resource sharing);")
	fmt.Println(" - dh3 stays resident through the semi-empty phase;")
	fmt.Println(" - dh4 displaces it once SW4 overloads the ring again.")
}
