// TPC-H: regenerate Table 4 — the trace-calibrated TPC-H SF-5 workload
// on rings of 1..8 nodes plus the modeled real-engine baseline. The
// shape to look for: aggregate throughput grows with ring size while
// per-node throughput and CPU utilization decay only slowly.
package main

import (
	"fmt"
	"log"

	dc "repro"
)

func main() {
	// Scale 0.25 runs 300 queries/node; pass 1.0 for the paper's 1200.
	res, err := dc.RunExperiment("table4", 0.25, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
	fmt.Println("Paper's Table 4 for comparison (SF-5, 1200 queries/node):")
	fmt.Println("  MonetDB 420s 2.8q/s 2.8/node 70% | 1 node 317s 3.8 3.8 99.7%")
	fmt.Println("  2 nodes 346.7s 6.9 3.4 92.0%     | 8 nodes 371.3s 25.8 3.2 85.3%")
}
