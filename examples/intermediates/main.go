// Result caching (§6.2): intermediate results become first-class ring
// citizens. One node computes an aggregate, publishes it into the
// storage ring under a name, and other nodes fetch it by name instead
// of recomputing — the intermediate lives and dies by its level of
// interest like any base fragment.
package main

import (
	"fmt"
	"log"

	dc "repro"
)

func main() {
	columns := map[string]*dc.BAT{
		"sales.region": dc.MakeStrs("sales.region", []string{"eu", "us", "eu", "asia", "us", "eu"}),
		"sales.amount": dc.MakeInts("sales.amount", []int64{10, 20, 30, 40, 50, 60}),
	}
	schema := dc.MapSchema{"sales": {"region", "amount"}}
	ring, err := dc.NewLiveRing(3, columns, schema, dc.DefaultLiveConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer ring.Close()

	// Node 0 computes a (pretend-expensive) aggregate...
	rs, err := ring.Node(0).ExecSQL(
		"select region, sum(amount) from sales group by region order by region")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("node 0 computed:")
	fmt.Println(rs)

	// ...and publishes the per-region sums into the ring.
	sums := rs.Cols[1]
	id, err := ring.Node(0).Publish("cache.region_totals", sums)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published as fragment %d\n\n", id)

	// Any other node fetches it by name — served by the flowing ring,
	// no recomputation.
	got, err := ring.Node(2).Fetch("cache.region_totals")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("node 2 fetched:", got.Dump(10))
}
