// Quickstart: build a 3-node live Data Cyclotron ring over two small
// tables, compile the paper's running example query (§3.2), show the
// plan before and after the DC optimizer (Table 1 → Table 2), and run
// it on a node that owns none of the data — the fragments flow around
// the storage ring to reach it.
package main

import (
	"fmt"
	"log"

	dc "repro"
)

func main() {
	// The schema of the paper's example:
	//   select c.t_id from t, c where c.t_id = t.id
	columns := map[string]*dc.BAT{
		"t.id":   dc.MakeInts("t.id", []int64{1, 2, 3, 4}),
		"t.name": dc.MakeStrs("t.name", []string{"one", "two", "three", "four"}),
		"c.t_id": dc.MakeInts("c.t_id", []int64{2, 2, 3, 9}),
		"c.val":  dc.MakeInts("c.val", []int64{100, 200, 300, 400}),
	}
	schema := dc.MapSchema{
		"t": {"id", "name"},
		"c": {"t_id", "val"},
	}

	const sql = "select c.t_id from t, c where c.t_id = t.id"
	plan, err := dc.CompileSQL(sql, schema)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== MAL plan (as the SQL front-end emits it, cf. Table 1) ===")
	fmt.Println(plan)

	dcPlan, err := dc.RewriteDC(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== After the DcOptimizer: request/pin/unpin (cf. Table 2) ===")
	fmt.Println(dcPlan)

	ring, err := dc.NewLiveRing(3, columns, schema, dc.DefaultLiveConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer ring.Close()

	// A query can be executed at any node (§1); pick node 2.
	rs, err := ring.Node(2).ExecSQL(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Result (executed at node 2, data pulled from the ring) ===")
	fmt.Println(rs)

	for i := 0; i < ring.Size(); i++ {
		st := ring.Node(i).Stats()
		fmt.Printf("node %d: BATs loaded=%d forwarded=%d, deliveries=%d\n",
			i, st.BATsLoaded, st.BATsForwarded, st.Deliveries)
	}
}
