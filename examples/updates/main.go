// Updates (§6.4): multi-version columns on the live ring. An update
// settles at the fragment's owner and installs a new version; readers
// that pinned the old version continue undisturbed (BAT immutability
// gives MVCC for free), and new queries see the new version once the
// stale flowing copy cools out of the ring.
package main

import (
	"fmt"
	"log"
	"time"

	dc "repro"
)

func main() {
	columns := map[string]*dc.BAT{
		"account.id":      dc.MakeInts("account.id", []int64{1, 2, 3}),
		"account.balance": dc.MakeInts("account.balance", []int64{100, 200, 300}),
	}
	schema := dc.MapSchema{"account": {"id", "balance"}}

	cfg := dc.DefaultLiveConfig()
	// Aggressive eviction so the demo converges quickly: stale flowing
	// copies cool out of the ring after one cycle.
	cfg.Core.LOITLevels = []float64{10}
	cfg.Core.AdaptiveLOIT = false

	ring, err := dc.NewLiveRing(3, columns, schema, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer ring.Close()

	show := func(label string) int64 {
		rs, err := ring.Node(1).ExecSQL("select sum(balance) from account")
		if err != nil {
			log.Fatal(err)
		}
		sum := rs.Row(0)[0].(int64)
		v, _ := ring.Version("account.balance")
		fmt.Printf("%-22s sum(balance)=%d (owner version %d)\n", label, sum, v)
		return sum
	}

	show("before update:")

	// Credit 10% interest: a new version at the owner.
	v, err := ring.UpdateColumn("account.balance", func(old *dc.BAT) *dc.BAT {
		vals := make([]int64, old.Len())
		for i := range vals {
			vals[i] = old.Tail().Int(i) * 110 / 100
		}
		return dc.MakeInts("account.balance", vals)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("installed version %d at the owner\n", v)

	// New queries converge on the new version once the old flowing
	// copy is evicted and the column is re-loaded from the owner.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if show("after update:") == 660 {
			fmt.Println("new version visible ring-wide")
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	log.Fatal("new version did not propagate in time")
}
