#!/usr/bin/env bash
# bench.sh — run the wire-codec benchmark suite, the fragment
# granularity sweep, the hot-set cache repeat sweep, the hop batching
# sweep, the failover kill-and-recover sweep, the grow-the-ring
# join sweep, and the hot/cold tier Zipf sweep, recording the results.
#
# Usage:
#   scripts/bench.sh          full run: 1s per benchmark, writes
#                             BENCH_wire.json, BENCH_frag.json,
#                             BENCH_cache.json, BENCH_hop.json,
#                             BENCH_failover.json, BENCH_join.json,
#                             and BENCH_tier.json
#   scripts/bench.sh -short   CI smoke: one iteration per benchmark and
#                             small sweeps, still gating on codec/gob
#                             equivalence, the fragmentation invariants,
#                             the cache hit-rate / ≥5× pin-p99 gates,
#                             the ≥4× hop-message reduction gate, and
#                             the zero-incorrect / bounded-recovery
#                             failover gates, and the zero-incorrect /
#                             full-share / transfer-dominated join gates
#
# The script fails if the codec-vs-gob equivalence tests fail (a wire
# format regression can never produce a "fast but wrong" green run) or
# if the fragment sweep misses its hop-shrink gate. The JSON files are
# snapshots of the latest run (overwritten each time); committing them
# alongside perf-relevant changes makes git history the repo's perf
# trajectory.
set -euo pipefail
cd "$(dirname "$0")/.."

SHORT=0
if [ "${1:-}" = "-short" ]; then
  SHORT=1
fi

echo "== codec/gob equivalence gate =="
go test ./internal/bat -count=1 \
  -run 'TestWireRoundtrip|TestWireGobEquivalence|TestMarshalSizeExact|TestWireVersionRejected|TestWireCorruptInputs|TestSerial'
go test ./internal/server -count=1 -run 'TestHelloRoundtrip|TestResultRoundtrip'

if [ "$SHORT" -eq 1 ]; then
  BENCHTIME=1x
else
  BENCHTIME=1s
fi

echo "== wire benchmarks (benchtime=$BENCHTIME) =="
TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT
go test ./internal/bat -run NONE -bench 'BenchmarkMarshal|BenchmarkUnmarshal' \
  -benchmem -benchtime="$BENCHTIME" | tee -a "$TMP"
go test ./internal/live -run NONE -bench 'BenchmarkRingHop' \
  -benchmem -benchtime="$BENCHTIME" | tee -a "$TMP"

OUT=BENCH_wire.json
awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v short="$SHORT" '
BEGIN { n = 0 }
/^Benchmark/ {
  name = $1; sub(/-[0-9]+$/, "", name)
  iters = $2
  ns = ""; mbs = ""; bop = ""; aop = ""
  for (i = 3; i < NF; i++) {
    if ($(i+1) == "ns/op") ns = $i
    else if ($(i+1) == "MB/s") mbs = $i
    else if ($(i+1) == "B/op") bop = $i
    else if ($(i+1) == "allocs/op") aop = $i
  }
  line = sprintf("    {\"name\":\"%s\",\"iters\":%s", name, iters)
  if (ns != "")  line = line sprintf(",\"ns_per_op\":%s", ns)
  if (mbs != "") line = line sprintf(",\"mb_per_s\":%s", mbs)
  if (bop != "") line = line sprintf(",\"bytes_per_op\":%s", bop)
  if (aop != "") line = line sprintf(",\"allocs_per_op\":%s", aop)
  line = line "}"
  results[n++] = line
}
END {
  printf "{\n  \"date\": \"%s\",\n  \"short\": %s,\n  \"suite\": \"wire-codec-vs-gob\",\n  \"benchmarks\": [\n", date, (short == 1 ? "true" : "false")
  for (i = 0; i < n; i++) printf "%s%s\n", results[i], (i < n-1 ? "," : "")
  print "  ]\n}"
}' "$TMP" > "$OUT"

echo "== wrote $OUT =="

echo "== fragment granularity sweep =="
if [ "$SHORT" -eq 1 ]; then
  go run ./cmd/dcfrag -short -out BENCH_frag.json
else
  go run ./cmd/dcfrag -out BENCH_frag.json
fi

echo "== hot-set cache repeat sweep =="
if [ "$SHORT" -eq 1 ]; then
  go run ./cmd/dccache -short -out BENCH_cache.json
else
  go run ./cmd/dccache -out BENCH_cache.json
fi

echo "== hop batching sweep =="
if [ "$SHORT" -eq 1 ]; then
  go run ./cmd/dchop -short -out BENCH_hop.json
else
  go run ./cmd/dchop -out BENCH_hop.json
fi

echo "== failover kill-and-recover sweep =="
if [ "$SHORT" -eq 1 ]; then
  go run ./cmd/dcfail -short -out BENCH_failover.json
else
  go run ./cmd/dcfail -out BENCH_failover.json
fi

echo "== grow-the-ring join sweep =="
if [ "$SHORT" -eq 1 ]; then
  go run ./cmd/dcjoin -short -out BENCH_join.json
else
  go run ./cmd/dcjoin -out BENCH_join.json
fi

echo "== hot/cold tier Zipf sweep =="
if [ "$SHORT" -eq 1 ]; then
  go run ./cmd/dctier -short -out BENCH_tier.json
else
  go run ./cmd/dctier -out BENCH_tier.json
fi

echo "== wire backend sweep (tcp vs io_uring) =="
if [ "$SHORT" -eq 1 ]; then
  go run ./cmd/dcuring -short -out BENCH_uring.json
else
  go run ./cmd/dcuring -out BENCH_uring.json
fi
