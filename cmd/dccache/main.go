// Command dccache runs the hot-set cache repeat-query sweep on the
// live TPC-H ring and records the cached-versus-uncached latency curve
// to a JSON snapshot, BENCH_cache.json by default. scripts/bench.sh
// invokes it; CI runs it with -short.
//
// The run is gated: with the cache enabled, the repeat workload must
// actually hit it (hit rate > 0), and the p99 pin latency of a
// fully-hot repeated pin must be at least 5× lower than with the cache
// off — a cache regression can never produce a quiet green run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/live"
)

func main() {
	rows := flag.Int("rows", 1<<20, "lineitem rows")
	nodes := flag.Int("nodes", 3, "ring size")
	repeats := flag.Int("repeats", 160, "repeat pins/queries per cache setting")
	think := flag.Duration("think", 8*time.Millisecond, "pause between repeats (intermittent re-read pattern)")
	budgets := flag.String("budgets", "0,67108864", "comma-separated CacheBytes settings (0 = off)")
	mode := flag.String("mode", "loi", "eviction policy for enabled runs: loi or lru")
	out := flag.String("out", "BENCH_cache.json", "output JSON path")
	short := flag.Bool("short", false, "CI smoke: small data, few repeats")
	seed := flag.Int64("seed", 42, "dataset seed")
	flag.Parse()

	if *short {
		*rows = 1 << 17
		*repeats = 25
		*think = 2 * time.Millisecond
	}
	var cacheBytes []int
	for _, s := range strings.Split(*budgets, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fatal("bad -budgets entry %q: %v", s, err)
		}
		cacheBytes = append(cacheBytes, v)
	}
	var cacheMode live.CacheMode
	switch *mode {
	case "loi":
		cacheMode = live.CacheLOI
	case "lru":
		cacheMode = live.CacheLRU
	default:
		fatal("bad -mode %q (want loi or lru)", *mode)
	}

	fmt.Printf("== cache sweep: %d rows, %d nodes, %d repeats, think %s, budgets %v, mode %s ==\n",
		*rows, *nodes, *repeats, *think, cacheBytes, cacheMode)
	res, err := experiments.CacheSweep(*rows, *nodes, *repeats, *think, cacheBytes, cacheMode, *seed)
	if err != nil {
		fatal("sweep: %v", err)
	}
	fmt.Print(res)

	if err := gate(res); err != nil {
		fatal("gate: %v", err)
	}

	snapshot := struct {
		Date  string `json:"date"`
		Short bool   `json:"short"`
		Suite string `json:"suite"`
		*experiments.CacheResult
	}{
		Date:        time.Now().UTC().Format(time.RFC3339),
		Short:       *short,
		Suite:       "hot-set-cache-repeat-sweep",
		CacheResult: res,
	}
	buf, err := json.MarshalIndent(snapshot, "", "  ")
	if err != nil {
		fatal("encode: %v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal("write: %v", err)
	}
	fmt.Printf("== wrote %s ==\n", *out)
}

// gate enforces the cache invariants on the recorded runs: the repeat
// workload must hit an enabled cache, a fully-hot repeated pin must be
// at least 5× faster at the 99th percentile than pure circulation, and
// with the set fully hot the cache must have stopped ring circulation
// during the repeat phase (node-local reads, not faster ring waits).
func gate(res *experiments.CacheResult) error {
	var off *experiments.CacheRun
	for i := range res.Runs {
		if res.Runs[i].CacheBytes == 0 {
			off = &res.Runs[i]
		}
	}
	for i := range res.Runs {
		run := &res.Runs[i]
		if run.CacheBytes == 0 {
			continue
		}
		if run.Hits == 0 {
			return fmt.Errorf("CacheBytes=%d: repeat workload never hit the cache", run.CacheBytes)
		}
		if off != nil && run.PinP99Micros*5 > off.PinP99Micros {
			return fmt.Errorf("CacheBytes=%d: pin p99 %dµs vs cache-off %dµs — want ≥5× reduction",
				run.CacheBytes, run.PinP99Micros, off.PinP99Micros)
		}
		if off != nil && off.RepeatHopBytes > 0 && run.RepeatHopBytes >= off.RepeatHopBytes {
			return fmt.Errorf("CacheBytes=%d: repeat-phase ring traffic %dB did not drop below cache-off %dB",
				run.CacheBytes, run.RepeatHopBytes, off.RepeatHopBytes)
		}
	}
	return nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dccache: "+format+"\n", args...)
	os.Exit(1)
}
