// Command dcfrag runs the fragment-granularity sweep on the live TPC-H
// ring and records the trade-off curve (p50/p99 query latency and
// ring-hop bytes vs fragment rows) to a JSON snapshot, BENCH_frag.json
// by default. scripts/bench.sh invokes it; CI runs it with -short.
//
// The run is gated: with fragmentation at 64K rows on a ≥8-fragment
// column, the largest ring message must shrink by at least 8× compared
// to the unfragmented rotation, or the command exits non-zero — a
// fragmentation regression can never produce a quiet green run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	rows := flag.Int("rows", 1<<20, "lineitem rows (the swept column)")
	nodes := flag.Int("nodes", 3, "ring size")
	queries := flag.Int("queries", 24, "queries per fragment setting")
	frags := flag.String("frags", "0,262144,65536,16384", "comma-separated FragmentRows settings (0 = off)")
	out := flag.String("out", "BENCH_frag.json", "output JSON path")
	short := flag.Bool("short", false, "CI smoke: small data, few queries, no latency soak")
	seed := flag.Int64("seed", 42, "dataset seed")
	flag.Parse()

	if *short {
		*rows = 1 << 17
		*queries = 6
		*frags = "0,8192,4096" // 16- and 32-way splits: well past the 8× gate
	}
	var fragRows []int
	for _, s := range strings.Split(*frags, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fatal("bad -frags entry %q: %v", s, err)
		}
		fragRows = append(fragRows, v)
	}

	fmt.Printf("== fragment sweep: %d rows, %d nodes, %d queries, frags %v ==\n",
		*rows, *nodes, *queries, fragRows)
	res, err := experiments.FragmentSweep(*rows, *nodes, *queries, fragRows, *seed)
	if err != nil {
		fatal("sweep: %v", err)
	}
	fmt.Print(res)

	if err := gate(res); err != nil {
		fatal("gate: %v", err)
	}

	snapshot := struct {
		Date  string `json:"date"`
		Short bool   `json:"short"`
		Suite string `json:"suite"`
		*experiments.FragResult
	}{
		Date:       time.Now().UTC().Format(time.RFC3339),
		Short:      *short,
		Suite:      "fragment-granularity-sweep",
		FragResult: res,
	}
	buf, err := json.MarshalIndent(snapshot, "", "  ")
	if err != nil {
		fatal("encode: %v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal("write: %v", err)
	}
	fmt.Printf("== wrote %s ==\n", *out)
}

// gate enforces the fragmentation invariants on the recorded runs: the
// unfragmented baseline (FragmentRows 0, when present) must dwarf every
// fragmented setting's max hop by at least the fragment ratio floor,
// and a fragmented run over a splittable column must actually have
// split it.
func gate(res *experiments.FragResult) error {
	var base *experiments.FragRun
	for i := range res.Runs {
		if res.Runs[i].FragmentRows == 0 {
			base = &res.Runs[i]
		}
	}
	for i := range res.Runs {
		run := &res.Runs[i]
		if run.FragmentRows == 0 {
			continue
		}
		wantFrags := (res.LineitemRows + run.FragmentRows - 1) / run.FragmentRows
		if run.Fragments != wantFrags {
			return fmt.Errorf("FragmentRows=%d: %d fragments, want %d",
				run.FragmentRows, run.Fragments, wantFrags)
		}
		if base != nil && wantFrags >= 8 && run.MaxHopBytes*8 > base.MaxHopBytes {
			return fmt.Errorf("FragmentRows=%d: max hop %d vs unfragmented %d — want ≥8× reduction",
				run.FragmentRows, run.MaxHopBytes, base.MaxHopBytes)
		}
	}
	return nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dcfrag: "+format+"\n", args...)
	os.Exit(1)
}
