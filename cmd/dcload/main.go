// Command dcload is a concurrent load driver for the Data Cyclotron
// query service: it fires N client sessions at a served ring, verifies
// every result against a per-query reference, and reports throughput,
// latency quantiles, and admission-control outcomes.
//
// Drive an external server (see cmd/dcserve):
//
//	dcload -addrs 127.0.0.1:4001,127.0.0.1:4002 -clients 64 -queries 2000
//
// Or let it stand up its own ring + server in-process (CI smoke mode):
//
//	dcload -selfserve -nodes 4 -clients 64 -queries 500
//
// It exits non-zero on any incorrect result or hard failure; admission
// rejections are expected under pressure and reported separately.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	dc "repro"
	"repro/internal/dcclient"
	"repro/internal/live"
	"repro/internal/tpch"
	"repro/internal/workload"
)

func main() {
	var (
		addrs     = flag.String("addrs", "", "comma-separated node addresses to load (alternative to -selfserve)")
		selfserve = flag.Bool("selfserve", false, "start an in-process ring + server and load that")
		nodes     = flag.Int("nodes", 4, "ring size (selfserve)")
		sf        = flag.Float64("sf", 0.0005, "TPC-H scale factor (selfserve)")
		seed      = flag.Int64("seed", 1, "data generator seed (selfserve)")
		transport = flag.String("transport", "inproc", "ring interconnect: inproc or tcp (selfserve)")
		inflight  = flag.Int("inflight", 8, "max in-flight queries per node (selfserve)")
		queue     = flag.Int("queue", 64, "max queued queries per node (selfserve)")
		clients   = flag.Int("clients", 64, "concurrent client sessions")
		queries   = flag.Int("queries", 2000, "total queries to fire")
		sql       = flag.String("q", "", "single SQL query (default: TPC-H demo mix)")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-query timeout")
		hopstats  = flag.Bool("hopstats", false, "report hop-transport stats: messages, batch fill, parked fragments")
		replicas  = flag.Int("replicas", 0, "fragment replicas per owner, enables membership (selfserve)")
		hb        = flag.Duration("hb", 0, "heartbeat interval for the failure detector (selfserve, 0 = default)")
		kill      = flag.Duration("kill", 0, "kill one node this long into the run (selfserve failover drill)")
		killnode  = flag.Int("killnode", 1, "node to kill in -kill mode")
		memstats  = flag.Bool("memstats", false, "report membership stats: view, liveness, replicas, failovers")
		zipf      = flag.Float64("zipf", 0, "Zipf θ skew for query selection over the mix (0 = round-robin)")
	)
	flag.Parse()

	var (
		targets []string
		srv     *dc.QueryServer
		ring    *dc.LiveRing
	)
	switch {
	case *selfserve:
		var err error
		ring, srv, err = startRing(*nodes, *sf, *seed, *transport, *inflight, *queue, *replicas, *hb)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcload:", err)
			os.Exit(1)
		}
		defer ring.Close()
		defer srv.Close()
		targets = srv.Addrs()
		fmt.Printf("selfserve: %d-node ring over TPC-H sf=%g, inflight=%d queue=%d replicas=%d\n",
			*nodes, *sf, *inflight, *queue, *replicas)
	case *addrs != "":
		targets = strings.Split(*addrs, ",")
	default:
		fmt.Fprintln(os.Stderr, "dcload: need -addrs or -selfserve")
		os.Exit(1)
	}

	if *kill > 0 {
		if srv == nil {
			fmt.Fprintln(os.Stderr, "dcload: -kill needs -selfserve (an external server is not ours to kill)")
			os.Exit(1)
		}
		if *replicas <= 0 {
			fmt.Fprintln(os.Stderr, "dcload: -kill needs -replicas > 0 (no failover without replica copies)")
			os.Exit(1)
		}
		if *killnode < 0 || *killnode >= ring.Size() {
			fmt.Fprintf(os.Stderr, "dcload: -killnode %d out of range for a %d-node ring\n", *killnode, ring.Size())
			os.Exit(1)
		}
		s, victim := srv, *killnode
		killTimer := time.AfterFunc(*kill, func() {
			fmt.Printf("kill: node %d down at t=%s\n", victim, *kill)
			s.KillNode(victim)
		})
		defer killTimer.Stop()
	}

	mix := []string{tpch.Q6ishSQL, tpch.Q1SQL, tpch.Q3ishSQL}
	if *sql != "" {
		mix = []string{*sql}
	}

	res := drive(targets, mix, *clients, *queries, *timeout, *zipf, *seed)

	fmt.Printf("\n%d clients x %d queries against %d node(s) in %.2fs\n",
		*clients, *queries, len(targets), res.wall.Seconds())
	fmt.Printf("throughput: %.0f q/s (completed %d)\n",
		float64(res.ok)/res.wall.Seconds(), res.ok)
	fmt.Printf("outcomes: ok=%d rejected=%d failed=%d incorrect=%d\n",
		res.ok, res.rejected, res.failed, res.incorrect)
	if res.ok > 0 {
		fmt.Printf("latency: p50=%s p95=%s p99=%s max=%s\n",
			res.quantile(0.50), res.quantile(0.95), res.quantile(0.99), res.lats[len(res.lats)-1])
	}
	if srv != nil {
		fmt.Println("\nper-node server stats:")
		for i := 0; i < ring.Size(); i++ {
			fmt.Printf("node %d: %s\n", i, srv.Stats(i))
		}
	}
	reportCache(targets, ring, res.ok)
	if *hopstats {
		reportHop(targets, ring)
	}
	if *memstats {
		reportMemb(targets, ring)
	}
	for _, e := range res.errors {
		fmt.Fprintln(os.Stderr, "dcload:", e)
	}
	if *kill > 0 {
		// Failover drill: correctness is absolute (a single wrong answer
		// fails the run), but a bounded number of hard failures is the
		// cost of killing a node under load — every client session may
		// lose at most the query it had in flight on the dead node.
		if res.incorrect > 0 || res.ok == 0 || res.failed > int64(*clients) {
			os.Exit(1)
		}
		return
	}
	if res.failed > 0 || res.incorrect > 0 || res.ok == 0 {
		os.Exit(1)
	}
}

// reportMemb prints the membership outcome of the run: view version,
// liveness counts, replica health, and how many failovers/promotions
// the ring performed. A self-served ring is read directly; external
// targets are asked over the wire.
func reportMemb(targets []string, ring *dc.LiveRing) {
	var ms dc.LiveMembershipStats
	if ring != nil {
		ms = ring.MembershipStats()
	} else {
		for _, addr := range targets {
			cl, err := dcclient.Dial(addr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dcload: membership stats: skipping %s: %v\n", addr, err)
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			st, err := cl.Stats(ctx)
			cancel()
			cl.Close()
			if err != nil {
				fmt.Fprintf(os.Stderr, "dcload: membership stats: skipping %s: %v\n", addr, err)
				continue
			}
			ms.Enabled = ms.Enabled || st.MembEnabled
			if st.MembViewVersion > ms.ViewVersion {
				ms.ViewVersion = st.MembViewVersion
				ms.Alive, ms.Suspect, ms.Dead = st.MembAlive, st.MembSuspect, st.MembDead
			}
			ms.Replicas += st.MembReplicas
			ms.ReplicaLag += st.MembReplicaLag
			if st.MembFailovers > ms.Failovers {
				ms.Failovers = st.MembFailovers
			}
			ms.Promotions += st.MembPromotions
			ms.LostFrags += st.MembLostFrags
			ms.BeatsSent += st.MembBeatsSent
			ms.BeatsRecv += st.MembBeatsRecv
		}
	}
	if !ms.Enabled {
		fmt.Println("\nmembership: disabled (replicas=0)")
		return
	}
	fmt.Printf("\nmembership: view v%d, %d alive / %d suspect / %d dead\n",
		ms.ViewVersion, ms.Alive, ms.Suspect, ms.Dead)
	fmt.Printf("replication: %d replica copies held, %d behind the catalog, %d lost\n",
		ms.Replicas, ms.ReplicaLag, ms.LostFrags)
	fmt.Printf("failover: %d failovers, %d promotions, beats %d sent / %d received\n",
		ms.Failovers, ms.Promotions, ms.BeatsSent, ms.BeatsRecv)
}

// reportCache prints the hot-set cache outcome of the run: how many
// pins were node-local reads versus ring waits, and the time spent
// blocked on circulation. A self-served ring is read directly;
// external targets are asked over the wire (stats frame).
func reportCache(targets []string, ring *dc.LiveRing, completed int64) {
	var hits, misses, coalesced, ringWaits int64
	var ringWait time.Duration
	if ring != nil {
		cs := ring.CacheStats()
		hits, misses, coalesced = cs.Hits, cs.Misses, cs.Coalesced
		ringWaits, ringWait = cs.RingWaits, time.Duration(cs.RingWaitNanos)
	} else {
		for _, addr := range targets {
			cl, err := dcclient.Dial(addr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dcload: cache stats: skipping %s: %v\n", addr, err)
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			st, err := cl.Stats(ctx)
			cancel()
			cl.Close()
			if err != nil {
				fmt.Fprintf(os.Stderr, "dcload: cache stats: skipping %s: %v\n", addr, err)
				continue
			}
			hits += st.CacheHits
			misses += st.CacheMisses
			coalesced += st.CacheCoalesced
			ringWaits += st.RingWaits
			ringWait += st.RingWait
		}
	}
	total := hits + misses
	if total == 0 && ringWaits == 0 {
		return
	}
	rate := 0.0
	if total > 0 {
		rate = 100 * float64(hits) / float64(total)
	}
	fmt.Printf("\nhot-set cache: hits=%d misses=%d (hit rate %.1f%%) coalesced=%d\n",
		hits, misses, rate, coalesced)
	perQuery := time.Duration(0)
	if completed > 0 {
		perQuery = ringWait / time.Duration(completed)
	}
	fmt.Printf("ring wait: %d blocked pins, %s total (%s per completed query)\n",
		ringWaits, ringWait, perQuery)
}

// reportHop prints the hop-transport outcome of the run: how many wire
// messages the ring's forwards cost versus how many fragments they
// carried (the batching win), the batch fill distribution, and how many
// fragments LOI pacing is holding parked at their owners. A self-served
// ring is read directly; external targets are asked over the wire.
func reportHop(targets []string, ring *dc.LiveRing) {
	var hs dc.LiveHopStats
	if ring != nil {
		hs = ring.HopStats()
	} else {
		for _, addr := range targets {
			cl, err := dcclient.Dial(addr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dcload: hop stats: skipping %s: %v\n", addr, err)
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			st, err := cl.Stats(ctx)
			cancel()
			cl.Close()
			if err != nil {
				fmt.Fprintf(os.Stderr, "dcload: hop stats: skipping %s: %v\n", addr, err)
				continue
			}
			hs.Msgs += st.HopMsgs
			hs.Singles += st.HopSingles
			hs.Batches += st.HopBatches
			hs.Frags += st.HopFrags
			for i := range hs.Fill {
				hs.Fill[i] += st.HopFill[i]
			}
			hs.Bytes += st.HopBytes
			if st.HopMaxMsg > hs.MaxMsg {
				hs.MaxMsg = st.HopMaxMsg
			}
			hs.Parked += int(st.HopParked)
			hs.ParkedTotal += st.HopParkedTotal
			hs.Unparked += st.HopUnparked
			hs.PoolAcquires += st.PoolAcquires
			hs.PoolWaits += st.PoolWaits
		}
	}
	if hs.Msgs == 0 {
		fmt.Println("\nhop transport: no data messages sent")
		return
	}
	fill := float64(hs.Frags) / float64(hs.Msgs)
	bytesPerMsg := hs.Bytes / hs.Msgs
	fmt.Printf("\nhop transport: %d messages carried %d fragments (fill %.2f): %d singles, %d batches\n",
		hs.Msgs, hs.Frags, fill, hs.Singles, hs.Batches)
	fmt.Printf("hop bytes: %d total, %d/msg mean, %d max message\n",
		hs.Bytes, bytesPerMsg, hs.MaxMsg)
	labels := [8]string{"1", "2", "3-4", "5-8", "9-16", "17-32", "33-64", ">64"}
	var parts []string
	for i, c := range hs.Fill {
		if c > 0 {
			parts = append(parts, fmt.Sprintf("%s:%d", labels[i], c))
		}
	}
	fmt.Printf("batch fill: %s\n", strings.Join(parts, " "))
	fmt.Printf("pacing: %d fragments parked now (%d parked / %d unparked total)\n",
		hs.Parked, hs.ParkedTotal, hs.Unparked)
	if hs.PoolWaits > 0 {
		fmt.Printf("send pool: %d waits / %d acquires\n", hs.PoolWaits, hs.PoolAcquires)
	}
}

func startRing(nodes int, sf float64, seed int64, transport string, inflight, queue, replicas int, hb time.Duration) (*dc.LiveRing, *dc.QueryServer, error) {
	ringCfg := dc.DefaultLiveConfig()
	switch transport {
	case "inproc":
		ringCfg.Transport = live.InProc
	case "tcp":
		ringCfg.Transport = live.TCP
	default:
		return nil, nil, fmt.Errorf("unknown transport %q", transport)
	}
	ringCfg.Replicas = replicas
	if hb > 0 {
		ringCfg.Heartbeat.HeartbeatInterval = hb
	}
	db := tpch.GenDB(sf, seed)
	columns := db.ColumnMap()
	ring, err := dc.NewLiveRing(nodes, columns, db.Schema(), ringCfg)
	if err != nil {
		return nil, nil, err
	}
	srvCfg := dc.DefaultServerConfig()
	srvCfg.MaxInFlight = inflight
	srvCfg.MaxQueue = queue
	srv, err := dc.Serve(ring, srvCfg)
	if err != nil {
		ring.Close()
		return nil, nil, err
	}
	return ring, srv, nil
}

// result aggregates the run.
type result struct {
	ok, rejected, failed, incorrect int64
	lats                            []time.Duration // successful queries, sorted
	wall                            time.Duration
	errors                          []string
}

func (r *result) quantile(q float64) time.Duration {
	if len(r.lats) == 0 {
		return 0
	}
	i := int(q * float64(len(r.lats)))
	if i >= len(r.lats) {
		i = len(r.lats) - 1
	}
	return r.lats[i]
}

// drive fires total queries from `clients` concurrent sessions spread
// round-robin over the target addresses and the query mix — or, with
// zipfTheta > 0, drawing each query from a seeded Zipf(θ) over the mix
// so the load skews onto a hot head. The first successful answer for
// each distinct SQL text becomes the reference; every later answer
// must match it exactly (zero-incorrect guarantee).
func drive(targets, mix []string, clients, total int, timeout time.Duration, zipfTheta float64, seed int64) *result {
	var (
		res     result
		mu      sync.Mutex // guards lats, errors, references
		refs    = map[string]string{}
		next    int64
		wg      sync.WaitGroup
		maxErrs = 10
		started = time.Now()
	)
	fingerprint := func(rows [][]any) string {
		keys := make([]string, len(rows))
		for i, row := range rows {
			keys[i] = fmt.Sprint(row)
		}
		sort.Strings(keys)
		return strings.Join(keys, "\n")
	}
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := dcclient.Dial(targets[w%len(targets)])
			if err != nil {
				mu.Lock()
				res.errors = append(res.errors, fmt.Sprintf("client %d: %v", w, err))
				mu.Unlock()
				atomic.AddInt64(&res.failed, 1)
				return
			}
			defer cl.Close()
			var pick func(*rand.Rand) int
			var rng *rand.Rand
			if zipfTheta > 0 {
				pick = workload.ZipfPick(len(mix), zipfTheta)
				rng = rand.New(rand.NewSource(seed + int64(w)))
			}
			var local []time.Duration
			for {
				n := atomic.AddInt64(&next, 1)
				if n > int64(total) {
					break
				}
				sql := mix[int(n)%len(mix)]
				if pick != nil {
					sql = mix[pick(rng)]
				}
				ctx, cancel := context.WithTimeout(context.Background(), timeout)
				start := time.Now()
				rs, err := cl.Query(ctx, sql)
				lat := time.Since(start)
				cancel()
				switch {
				case err == nil:
					fp := fingerprint(rs.Rows())
					mu.Lock()
					ref, seen := refs[sql]
					if !seen {
						refs[sql] = fp
					}
					mu.Unlock()
					if seen && fp != ref {
						atomic.AddInt64(&res.incorrect, 1)
						mu.Lock()
						if len(res.errors) < maxErrs {
							res.errors = append(res.errors, fmt.Sprintf("client %d: result mismatch for %.40q", w, sql))
						}
						mu.Unlock()
						continue
					}
					atomic.AddInt64(&res.ok, 1)
					local = append(local, lat)
				case dcclient.IsTemporary(err):
					atomic.AddInt64(&res.rejected, 1)
				default:
					atomic.AddInt64(&res.failed, 1)
					mu.Lock()
					if len(res.errors) < maxErrs {
						res.errors = append(res.errors, fmt.Sprintf("client %d: %v", w, err))
					}
					mu.Unlock()
				}
			}
			mu.Lock()
			res.lats = append(res.lats, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	res.wall = time.Since(started)
	sort.Slice(res.lats, func(i, j int) bool { return res.lats[i] < res.lats[j] })
	return &res
}
