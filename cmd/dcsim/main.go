// Command dcsim regenerates the tables and figures of "The Data
// Cyclotron Query Processing Scheme" (EDBT 2010) from the simulated
// ring, printing the same rows/series the paper reports.
//
// Usage:
//
//	dcsim -exp fig6            # one experiment
//	dcsim -exp all             # everything (a few minutes at scale 1)
//	dcsim -exp table4 -scale 0.1 -seed 7
//	dcsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	dc "repro"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id or 'all'")
		scale = flag.Float64("scale", 1.0, "workload scale (1.0 = paper volume)")
		seed  = flag.Int64("seed", 1, "random seed")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range dc.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}

	ids := []string{*exp}
	if *exp == "all" {
		// fig6/fig7 share a run, as do fig10/fig11.
		ids = []string{"fig1", "fig6", "fig8", "fig9", "table4", "fig10"}
	}
	for _, id := range ids {
		start := time.Now()
		res, err := dc.RunExperiment(id, *scale, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcsim:", err)
			os.Exit(1)
		}
		fmt.Printf("=== %s (scale %.3g, seed %d, %.1fs wall) ===\n%s\n",
			id, *scale, *seed, time.Since(start).Seconds(), res)
	}
}
