// Command dcuring runs the wire-backend sweep on the fragmented live
// TPC-H ring — the same workload once over the classic tcp write/read
// path and once over the registered-buffer io_uring path — and records
// syscall-layer counters next to latency quantiles in a JSON snapshot,
// BENCH_uring.json by default. scripts/bench.sh invokes it; CI runs it
// with -short.
//
// The run is gated: both backends must produce byte-identical answers,
// the uring pass must cut syscalls per hop message by at least 2× (full
// run; the -short smoke is held to a documented directional floor)
// against tcp, and its p99 latency must stay within -p99slack of the
// tcp baseline — or the command exits non-zero. On kernels without
// io_uring the sweep records the tcp baseline plus the probe's reason
// and exits zero (a skip, not a failure), so smoke jobs stay green on
// build hosts that cannot run the backend at all.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

// The syscalls-per-hop reduction floor the uring pass must clear
// against the tcp baseline. The full run sustains ring circulation long
// enough for the messenger's pipelined send window to fold runs of hop
// envelopes into linked submission chains — one io_uring_enter covering
// many queued messages — and is held to the headline ≥2×. The -short
// smoke run is dominated by warmup and short bursts where no run of
// messages ever co-queues, which pins the backend at its unbatched
// structural floor: ~1 enter to send + ~1 enter to receive per message,
// against tcp's 1 gather write + ~2 reads ≈ a 1.5× reduction. Short is
// therefore held to a directional ≥1.3× — enough to catch a backend
// that stopped winning at all, without demanding batching from a
// workload that cannot produce it.
const (
	gateSyscallRatioFull  = 2.0
	gateSyscallRatioShort = 1.3
)

// shortP99Slack replaces the default -p99slack under -short: on the
// small run a single scheduler hiccup lands entirely in one query's
// tail, so the tight full-run slack would make the smoke job a coin
// flip. An explicit -p99slack still wins.
const shortP99Slack = 3.0

func main() {
	rows := flag.Int("rows", 1<<20, "lineitem rows (the fragmented column)")
	nodes := flag.Int("nodes", 3, "ring size")
	queries := flag.Int("queries", 24, "queries per backend")
	fragRows := flag.Int("fragrows", 16384, "FragmentRows (1M rows / 16384 = 64 fragments)")
	p99slack := flag.Float64("p99slack", 1.25, "uring p99 may exceed tcp p99 by at most this factor")
	out := flag.String("out", "BENCH_uring.json", "output JSON path")
	short := flag.Bool("short", false, "CI smoke: small data, few queries")
	seed := flag.Int64("seed", 42, "dataset seed")
	flag.Parse()

	ratio := gateSyscallRatioFull
	if *short {
		*rows = 1 << 17
		*queries = 6
		*fragRows = 2048 // 64-way split at 128K rows: same fragment fan-out as the full run
		ratio = gateSyscallRatioShort
		p99slackSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "p99slack" {
				p99slackSet = true
			}
		})
		if !p99slackSet {
			*p99slack = shortP99Slack
		}
	}

	fmt.Printf("== wire backend sweep: %d rows, %d nodes, %d queries, fragrows %d ==\n",
		*rows, *nodes, *queries, *fragRows)
	res, err := experiments.UringSweep(*rows, *nodes, *queries, *fragRows, []string{"tcp", "uring"}, *seed)
	if err != nil {
		fatal("sweep: %v", err)
	}
	fmt.Print(res)

	if err := gate(res, ratio, *p99slack); err != nil {
		fatal("gate: %v", err)
	}

	snapshot := struct {
		Date  string `json:"date"`
		Short bool   `json:"short"`
		Suite string `json:"suite"`
		*experiments.UringResult
	}{
		Date:        time.Now().UTC().Format(time.RFC3339),
		Short:       *short,
		Suite:       "wire-backend-sweep",
		UringResult: res,
	}
	buf, err := json.MarshalIndent(snapshot, "", "  ")
	if err != nil {
		fatal("encode: %v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal("write: %v", err)
	}
	fmt.Printf("== wrote %s ==\n", *out)
	if !res.Supported {
		fmt.Printf("== io_uring unavailable (%s): recorded tcp baseline only, gates skipped ==\n", res.SupportNote)
	}
}

// gate enforces the backend invariants: identical answers, a real
// syscalls-per-hop win, and no tail-latency regression beyond slack.
// A sweep on a kernel without io_uring has nothing to gate.
func gate(res *experiments.UringResult, ratio, p99slack float64) error {
	if !res.Match {
		return fmt.Errorf("backends returned different answers: %+v", res.Runs)
	}
	tcp, uring := res.Run("tcp"), res.Run("uring")
	if tcp == nil {
		return fmt.Errorf("sweep recorded no tcp baseline")
	}
	if uring == nil {
		if res.Supported {
			return fmt.Errorf("io_uring supported but the sweep recorded no uring run")
		}
		return nil // unsupported kernel: baseline-only snapshot, skip
	}
	if uring.Fallback != "" {
		return fmt.Errorf("uring run fell back: %s", uring.Fallback)
	}
	if uring.SyscallsPerHop*ratio > tcp.SyscallsPerHop {
		return fmt.Errorf("syscalls/hop: uring %.2f vs tcp %.2f — want ≥%.1f× reduction",
			uring.SyscallsPerHop, tcp.SyscallsPerHop, ratio)
	}
	if float64(uring.P99Micros) > p99slack*float64(tcp.P99Micros) {
		return fmt.Errorf("p99: uring %dµs vs tcp %dµs — exceeds %.2fx slack",
			uring.P99Micros, tcp.P99Micros, p99slack)
	}
	return nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dcuring: "+format+"\n", args...)
	os.Exit(1)
}
