// dctier runs the hot/cold tier sweep: the same seeded Zipf access
// stream against a single wide ring and against the routed two-tier
// runtime, plus the flash-crowd promotion probe. It writes the result
// as JSON (BENCH_tier.json) and, with -gate, exits non-zero unless the
// three tier contracts hold: zero incorrect answers, hot revolution
// below cold, flash promotion within one cold revolution.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	short := flag.Bool("short", false, "CI-sized sweep")
	cols := flag.Int("cols", 0, "distinct columns (0 = preset)")
	rows := flag.Int("rows", 0, "rows per column (0 = preset)")
	accesses := flag.Int("accesses", 0, "fetches in the stream (0 = preset)")
	theta := flag.Float64("theta", -1, "Zipf skew (negative = preset)")
	seed := flag.Int64("seed", 1, "workload seed")
	out := flag.String("out", "BENCH_tier.json", "result file (empty = stdout only)")
	gate := flag.Bool("gate", true, "exit non-zero if the tier gates fail")
	flag.Parse()

	opts := experiments.DefaultTierOpts()
	if *short {
		opts = opts.Short()
	}
	if *cols > 0 {
		opts.Columns = *cols
	}
	if *rows > 0 {
		opts.Rows = *rows
	}
	if *accesses > 0 {
		opts.Accesses = *accesses
	}
	if *theta >= 0 {
		opts.Theta = *theta
	}
	opts.Seed = *seed

	res, err := experiments.TierSweep(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dctier:", err)
		os.Exit(1)
	}
	fmt.Print(res)

	if *out != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "dctier:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "dctier:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *out)
	}

	if err := res.Gate(); err != nil {
		fmt.Fprintln(os.Stderr, "dctier:", err)
		if *gate {
			os.Exit(1)
		}
	} else {
		fmt.Println("tier gates: ok")
	}
}
