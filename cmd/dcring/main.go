// Command dcring spins up a live in-process Data Cyclotron ring over a
// generated TPC-H-style database and executes SQL against it, showing
// plans before and after the DC optimizer and per-node protocol stats.
//
// Usage:
//
//	dcring -nodes 4 -sf 0.001
//	dcring -nodes 3 -q "select sum(l_extendedprice), count(*) from lineitem"
package main

import (
	"flag"
	"fmt"
	"os"

	dc "repro"
	"repro/internal/tpch"
)

func main() {
	var (
		nodes = flag.Int("nodes", 4, "ring size")
		sf    = flag.Float64("sf", 0.001, "TPC-H scale factor for the generated data")
		seed  = flag.Int64("seed", 1, "data generator seed")
		query = flag.String("q", "", "single SQL query (default: demo set)")
	)
	flag.Parse()

	db := tpch.GenDB(*sf, *seed)
	columns := db.ColumnMap()
	ring, err := dc.NewLiveRing(*nodes, columns, db.Schema(), dc.DefaultLiveConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcring:", err)
		os.Exit(1)
	}
	defer ring.Close()
	fmt.Printf("live ring: %d nodes, %d column fragments (lineitem=%d rows)\n\n",
		ring.Size(), len(columns), db.Rows("lineitem"))

	queries := []string{
		tpch.Q6ishSQL,
		tpch.Q1SQL,
		tpch.Q3ishSQL,
	}
	if *query != "" {
		queries = []string{*query}
	}
	for _, q := range queries {
		fmt.Println("SQL:", q)
		plan, err := dc.CompileSQL(q, db.Schema())
		if err != nil {
			fmt.Fprintln(os.Stderr, "compile:", err)
			os.Exit(1)
		}
		dcPlan, err := dc.RewriteDC(plan)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rewrite:", err)
			os.Exit(1)
		}
		fmt.Printf("plan: %d instructions -> %d after DcOptimizer\n", len(plan.Instrs), len(dcPlan.Instrs))
		rs, err := ring.Submit(q) // nomadic phase picks the node
		if err != nil {
			fmt.Fprintln(os.Stderr, "exec:", err)
			os.Exit(1)
		}
		fmt.Println(rs)
	}

	fmt.Println("per-node protocol stats:")
	for i := 0; i < ring.Size(); i++ {
		st := ring.Node(i).Stats()
		fmt.Printf("  node %d: requests sent=%d forwarded=%d absorbed=%d; BATs loaded=%d forwarded=%d unloaded=%d; deliveries=%d\n",
			i, st.RequestsSent, st.RequestsForwarded, st.RequestsAbsorbed,
			st.BATsLoaded, st.BATsForwarded, st.BATsUnloaded, st.Deliveries)
	}
}
