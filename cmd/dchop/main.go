// Command dchop runs the hop-batching sweep on the fragmented live
// TPC-H ring and records the trade-off (hop wire messages and batch
// fill vs query latency) to a JSON snapshot, BENCH_hop.json by default.
// scripts/bench.sh invokes it; CI runs it with -short.
//
// The run is gated: the batched setting must cut hop wire messages by
// at least 4× against the unbatched baseline on the same workload and
// must show a populated multi-fragment fill histogram, or the command
// exits non-zero — a batching regression can never produce a quiet
// green run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
)

// gateRatio is the hop-message reduction floor the batched run must
// clear against the unbatched baseline.
const gateRatio = 4

func main() {
	rows := flag.Int("rows", 1<<20, "lineitem rows (the fragmented column)")
	nodes := flag.Int("nodes", 3, "ring size")
	queries := flag.Int("queries", 24, "queries per batch setting")
	fragRows := flag.Int("fragrows", 16384, "FragmentRows (1M rows / 16384 = 64 fragments)")
	budgets := flag.String("budgets", "0,1048576", "comma-separated HopBatchBytes settings (0 = off)")
	out := flag.String("out", "BENCH_hop.json", "output JSON path")
	short := flag.Bool("short", false, "CI smoke: small data, few queries")
	seed := flag.Int64("seed", 42, "dataset seed")
	flag.Parse()

	if *short {
		*rows = 1 << 17
		*queries = 6
		*fragRows = 2048 // 64-way split at 128K rows: same fill regime as the full run
	}
	var batchBytes []int
	for _, s := range strings.Split(*budgets, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fatal("bad -budgets entry %q: %v", s, err)
		}
		batchBytes = append(batchBytes, v)
	}

	fmt.Printf("== hop batching sweep: %d rows, %d nodes, %d queries, fragrows %d, budgets %v ==\n",
		*rows, *nodes, *queries, *fragRows, batchBytes)
	res, err := experiments.HopSweep(*rows, *nodes, *queries, *fragRows, batchBytes, *seed)
	if err != nil {
		fatal("sweep: %v", err)
	}
	fmt.Print(res)

	if err := gate(res); err != nil {
		fatal("gate: %v", err)
	}

	snapshot := struct {
		Date  string `json:"date"`
		Short bool   `json:"short"`
		Suite string `json:"suite"`
		*experiments.HopResult
	}{
		Date:      time.Now().UTC().Format(time.RFC3339),
		Short:     *short,
		Suite:     "hop-batching-sweep",
		HopResult: res,
	}
	buf, err := json.MarshalIndent(snapshot, "", "  ")
	if err != nil {
		fatal("encode: %v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal("write: %v", err)
	}
	fmt.Printf("== wrote %s ==\n", *out)
}

// gate enforces the batching invariants on the recorded runs: the
// unbatched baseline (HopBatchBytes 0, when present) must send all
// singles, and every batched setting must cut its message count by at
// least gateRatio while actually filling multi-fragment envelopes.
func gate(res *experiments.HopResult) error {
	var base *experiments.HopRun
	for i := range res.Runs {
		if res.Runs[i].HopBatchBytes == 0 {
			base = &res.Runs[i]
		}
	}
	if base != nil && (base.Batches != 0 || base.Singles != base.Msgs) {
		return fmt.Errorf("unbatched baseline sent batches: %d batches, %d singles of %d msgs",
			base.Batches, base.Singles, base.Msgs)
	}
	for i := range res.Runs {
		run := &res.Runs[i]
		if run.HopBatchBytes == 0 {
			continue
		}
		var multi int64
		for b := 1; b < len(run.Fill); b++ {
			multi += run.Fill[b]
		}
		if run.Batches == 0 || multi == 0 {
			return fmt.Errorf("HopBatchBytes=%d: empty multi-fragment fill histogram %v",
				run.HopBatchBytes, run.Fill)
		}
		if base != nil && run.Msgs*gateRatio > base.Msgs {
			return fmt.Errorf("HopBatchBytes=%d: %d hop messages vs unbatched %d — want ≥%d× reduction",
				run.HopBatchBytes, run.Msgs, base.Msgs, gateRatio)
		}
	}
	return nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dchop: "+format+"\n", args...)
	os.Exit(1)
}
