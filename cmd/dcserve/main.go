// Command dcserve starts a live Data Cyclotron ring over generated
// TPC-H-style data and serves every node over TCP: the network front
// door for external clients (see cmd/dcload for a matching driver).
//
// Usage:
//
//	dcserve -nodes 4 -sf 0.001
//	dcserve -nodes 4 -inflight 8 -queue 64 -transport tcp
//
// It prints one "node <i>: <addr>" line per listener, then serves until
// SIGINT/SIGTERM, draining in-flight queries before exiting.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	dc "repro"
	"repro/internal/live"
	"repro/internal/tpch"
)

func main() {
	var (
		nodes     = flag.Int("nodes", 4, "ring size")
		sf        = flag.Float64("sf", 0.001, "TPC-H scale factor for the generated data")
		seed      = flag.Int64("seed", 1, "data generator seed")
		addr      = flag.String("addr", "127.0.0.1:0", "base listen address (port 0 = ephemeral per node; concrete port P serves node i on P+i)")
		inflight  = flag.Int("inflight", 8, "max concurrently executing queries per node")
		queue     = flag.Int("queue", 64, "max queries waiting for a slot per node")
		transport = flag.String("transport", "inproc", "ring interconnect: inproc or tcp")
	)
	flag.Parse()

	ringCfg := dc.DefaultLiveConfig()
	switch *transport {
	case "inproc":
		ringCfg.Transport = live.InProc
	case "tcp":
		ringCfg.Transport = live.TCP
	default:
		fmt.Fprintf(os.Stderr, "dcserve: unknown transport %q\n", *transport)
		os.Exit(1)
	}

	db := tpch.GenDB(*sf, *seed)
	columns := db.ColumnMap()
	ring, err := dc.NewLiveRing(*nodes, columns, db.Schema(), ringCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcserve:", err)
		os.Exit(1)
	}
	defer ring.Close()

	srvCfg := dc.DefaultServerConfig()
	srvCfg.Addr = *addr
	srvCfg.MaxInFlight = *inflight
	srvCfg.MaxQueue = *queue
	srv, err := dc.Serve(ring, srvCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcserve:", err)
		os.Exit(1)
	}

	fmt.Printf("serving %d-node ring over TPC-H sf=%g (lineitem=%d rows)\n",
		ring.Size(), *sf, db.Rows("lineitem"))
	for i, a := range srv.Addrs() {
		fmt.Printf("node %d: %s\n", i, a)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	fmt.Println("\ndraining...")
	srv.Close()
	if !ring.Quiesce(5 * time.Second) {
		fmt.Fprintln(os.Stderr, "dcserve: ring did not quiesce; closing anyway")
	}
	for i := 0; i < ring.Size(); i++ {
		fmt.Printf("node %d: %s\n", i, srv.Stats(i))
	}
}
