// Command dcjoin runs the grow-the-ring sweep on the replicated live
// ring served over the network query service and records the join
// envelope (splice, transfer, newcomer's first answer, pre/post tail
// latency) to a JSON snapshot, BENCH_join.json by default.
// scripts/bench.sh invokes it; CI runs it with -short.
//
// The run is gated on the join protocol's promises: zero incorrect
// answers, zero hard failures, the newcomer owning its full planned
// share and answering for itself, a converged catalog, and join
// completion dominated by the transfer (total under 2× transfer plus a
// small fixed floor) — an admission or rebalancing regression can never
// produce a quiet green run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
)

// gateFactor bounds the whole join as a multiple of its transfer
// phase: admission and splice-in must stay cheap next to moving data.
// totalFloorMs absorbs fixed costs on runs whose transfer rounds to
// nearly nothing.
const (
	gateFactor   = 2
	totalFloorMs = 250
)

// p99Factor bounds a grown ring's post-join tail against the same-size
// ring of the next run before its join (run N's post state and run
// N+1's pre state are both an (N+1)-node ring under identical load).
const p99Factor = 2

func main() {
	rows := flag.Int("rows", 1<<17, "lineitem rows")
	clients := flag.Int("clients", 8, "concurrent network clients")
	queries := flag.Int("queries", 300, "queries per ring size")
	sizes := flag.String("sizes", "3,4", "comma-separated pre-join ring sizes; one node joins each")
	out := flag.String("out", "BENCH_join.json", "output JSON path")
	short := flag.Bool("short", false, "CI smoke: small data, few queries")
	seed := flag.Int64("seed", 42, "dataset seed")
	flag.Parse()

	if *short {
		*rows = 1 << 15
		*queries = 150
	}
	var ringSizes []int
	for _, s := range strings.Split(*sizes, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v < 2 {
			fatal("bad -sizes entry %q", s)
		}
		ringSizes = append(ringSizes, v)
	}

	fmt.Printf("== join sweep: %d rows, %d clients, %d queries, pre-join ring sizes %v ==\n",
		*rows, *clients, *queries, ringSizes)
	res, err := experiments.JoinSweep(*rows, *clients, *queries, ringSizes, *seed)
	if err != nil {
		fatal("sweep: %v", err)
	}
	fmt.Print(res)

	if err := gate(res); err != nil {
		fatal("gate: %v", err)
	}

	snapshot := struct {
		Date  string `json:"date"`
		Short bool   `json:"short"`
		Suite string `json:"suite"`
		*experiments.JoinResult
	}{
		Date:       time.Now().UTC().Format(time.RFC3339),
		Short:      *short,
		Suite:      "join-sweep",
		JoinResult: res,
	}
	buf, err := json.MarshalIndent(snapshot, "", "  ")
	if err != nil {
		fatal("encode: %v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal("write: %v", err)
	}
	fmt.Printf("== wrote %s ==\n", *out)
}

// gate enforces the join invariants on every recorded run.
func gate(res *experiments.JoinResult) error {
	for i := range res.Runs {
		run := &res.Runs[i]
		if run.Incorrect != 0 {
			return fmt.Errorf("%d nodes: %d incorrect answers — correctness is absolute", run.Nodes, run.Incorrect)
		}
		if run.Failed != 0 {
			return fmt.Errorf("%d nodes: %d hard query failures", run.Nodes, run.Failed)
		}
		if run.Migrated == 0 || run.Skipped != 0 || run.Migrated != run.Share {
			return fmt.Errorf("%d nodes: newcomer owns %d of its %d-fragment share (%d skipped)",
				run.Nodes, run.Migrated, run.Share, run.Skipped)
		}
		if !run.Converged {
			return fmt.Errorf("%d nodes: catalog did not converge after the join", run.Nodes)
		}
		if run.Failovers != 0 {
			// Nobody is killed in this sweep: any death verdict was a
			// false positive, and the ring quietly papered over it with
			// replica promotion. The numbers above would still look green
			// — which is exactly why this is a hard failure.
			return fmt.Errorf("%d nodes: %d false failovers during the run", run.Nodes, run.Failovers)
		}
		if run.NewcomerOKMs < 0 {
			return fmt.Errorf("%d nodes: the newcomer never answered a query correctly", run.Nodes)
		}
		budget := gateFactor*run.TransferMs + totalFloorMs
		if run.TotalMs > budget {
			return fmt.Errorf("%d nodes: join took %dms, budget %dms (%d× the %dms transfer + %dms floor)",
				run.Nodes, run.TotalMs, budget, gateFactor, run.TransferMs, totalFloorMs)
		}
		// Run N's grown ring and run N+1's pre-join ring are the same
		// size under the same load: the grown ring's tail must not
		// degrade against a ring born at that size.
		for j := range res.Runs {
			peer := &res.Runs[j]
			if peer.Nodes != run.Nodes+1 || run.PostP99Micros == 0 || peer.PreP99Micros == 0 {
				continue
			}
			if run.PostP99Micros > p99Factor*peer.PreP99Micros {
				return fmt.Errorf("%d->%d join: post-join p99 %dus vs %dus on a born-%d-node ring (budget %d×)",
					run.Nodes, run.Nodes+1, run.PostP99Micros, peer.PreP99Micros, peer.Nodes, p99Factor)
			}
		}
	}
	return nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dcjoin: "+format+"\n", args...)
	os.Exit(1)
}
