// Command dcfail runs the kill-and-recover sweep on the replicated
// live ring served over the network query service and records the
// recovery envelope (detection, re-ownership, first post-kill answer)
// to a JSON snapshot, BENCH_failover.json by default. scripts/bench.sh
// invokes it; CI runs it with -short.
//
// The run is gated on the membership layer's promises: zero incorrect
// answers, zero hard failures, every fragment re-owned from its
// replica with nothing lost, and recovery (both re-ownership and the
// first fully post-kill answer) inside gateFactor death timeouts — a
// failover regression can never produce a quiet green run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
)

// gateFactor bounds recovery as a multiple of the failure detector's
// death timeout: detection itself costs one timeout, so promotion,
// splice, and client failover together get at most one more.
const gateFactor = 2

func main() {
	rows := flag.Int("rows", 1<<17, "lineitem rows")
	clients := flag.Int("clients", 8, "concurrent network clients")
	queries := flag.Int("queries", 300, "queries per ring size")
	sizes := flag.String("sizes", "3,4,5", "comma-separated ring sizes; one node is killed in each")
	out := flag.String("out", "BENCH_failover.json", "output JSON path")
	short := flag.Bool("short", false, "CI smoke: small data, few queries")
	seed := flag.Int64("seed", 42, "dataset seed")
	flag.Parse()

	if *short {
		*rows = 1 << 15
		*queries = 150
		*sizes = "3,5"
	}
	var ringSizes []int
	for _, s := range strings.Split(*sizes, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v < 2 {
			fatal("bad -sizes entry %q", s)
		}
		ringSizes = append(ringSizes, v)
	}

	fmt.Printf("== failover sweep: %d rows, %d clients, %d queries, ring sizes %v ==\n",
		*rows, *clients, *queries, ringSizes)
	res, err := experiments.FailoverSweep(*rows, *clients, *queries, ringSizes, *seed)
	if err != nil {
		fatal("sweep: %v", err)
	}
	fmt.Print(res)

	if err := gate(res); err != nil {
		fatal("gate: %v", err)
	}

	snapshot := struct {
		Date  string `json:"date"`
		Short bool   `json:"short"`
		Suite string `json:"suite"`
		*experiments.FailoverResult
	}{
		Date:           time.Now().UTC().Format(time.RFC3339),
		Short:          *short,
		Suite:          "failover-sweep",
		FailoverResult: res,
	}
	buf, err := json.MarshalIndent(snapshot, "", "  ")
	if err != nil {
		fatal("encode: %v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal("write: %v", err)
	}
	fmt.Printf("== wrote %s ==\n", *out)
}

// gate enforces the failover invariants on every recorded run.
func gate(res *experiments.FailoverResult) error {
	for i := range res.Runs {
		run := &res.Runs[i]
		if run.Incorrect != 0 {
			return fmt.Errorf("%d nodes: %d incorrect answers — correctness is absolute", run.Nodes, run.Incorrect)
		}
		if run.Failed != 0 {
			return fmt.Errorf("%d nodes: %d hard query failures", run.Nodes, run.Failed)
		}
		if !run.Reowned || run.LostFrags != 0 {
			return fmt.Errorf("%d nodes: fragments not recovered (reowned=%v, lost=%d)",
				run.Nodes, run.Reowned, run.LostFrags)
		}
		if run.Promotions == 0 {
			return fmt.Errorf("%d nodes: kill produced no promotions — the victim owned nothing?", run.Nodes)
		}
		budget := gateFactor * run.DeadTimeoutMs
		if run.ReownMs > budget {
			return fmt.Errorf("%d nodes: re-ownership took %dms, budget %dms (%d× death timeout)",
				run.Nodes, run.ReownMs, budget, gateFactor)
		}
		if run.FirstOKMs < 0 || run.FirstOKMs > budget {
			return fmt.Errorf("%d nodes: first post-kill answer at %dms, budget %dms (%d× death timeout)",
				run.Nodes, run.FirstOKMs, budget, gateFactor)
		}
	}
	return nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dcfail: "+format+"\n", args...)
	os.Exit(1)
}
