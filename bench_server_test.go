package datacyclotron

import (
	"context"
	"sync"
	"testing"

	"repro/internal/dcclient"
	"repro/internal/live"
	"repro/internal/server"
	"repro/internal/tpch"
)

// BenchmarkServerThroughput measures the network query service end to
// end: TPC-H data partitioned over a 4-node live ring, every node
// served over TCP, and pooled clients firing the Q6-style selective
// aggregate concurrently through the full protocol path (admission,
// plan cache, execution, result serialization). The sub-benchmarks
// compare whole-column circulation against horizontal fragmentation
// (lineitem splits into several independently circulating fragments,
// pinned out of order and scanned per fragment).
func BenchmarkServerThroughput(b *testing.B) {
	b.Run("unfragmented", func(b *testing.B) { benchServerThroughput(b, 0) })
	b.Run("frag512", func(b *testing.B) { benchServerThroughput(b, 512) })
}

func benchServerThroughput(b *testing.B, fragmentRows int) {
	db := tpch.GenDB(0.0005, 1)
	columns := db.ColumnMap()
	cfg := live.DefaultConfig()
	cfg.FragmentRows = fragmentRows
	ring, err := live.NewRing(4, columns, db.Schema(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer ring.Close()
	srv, err := server.Serve(ring, server.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	// One pooled client per node, handed out round-robin to the
	// benchmark's parallel workers.
	clients := make([]*dcclient.Client, ring.Size())
	for i := range clients {
		clients[i], err = dcclient.Dial(srv.Addr(i))
		if err != nil {
			b.Fatal(err)
		}
		defer clients[i].Close()
	}
	var nextClient int
	var pickMu sync.Mutex
	pick := func() *dcclient.Client {
		pickMu.Lock()
		cl := clients[nextClient%len(clients)]
		nextClient++
		pickMu.Unlock()
		return cl
	}

	ctx := context.Background()
	b.SetParallelism(4) // 4 client goroutines per CPU: keep admission slots busy
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		cl := pick()
		for pb.Next() {
			rs, err := cl.Query(ctx, tpch.Q6ishSQL)
			if err != nil {
				b.Fatal(err)
			}
			if rs.NumRows() != 1 {
				b.Fatalf("rows = %d", rs.NumRows())
			}
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	b.ReportMetric(float64(ring.MaxHopBytes()), "maxhop-bytes")
}
