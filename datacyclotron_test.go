package datacyclotron

import (
	"strings"
	"testing"
	"time"
)

func TestFacadeSimulation(t *testing.T) {
	cfg := DefaultSimConfig()
	cfg.Nodes = 4
	c := NewSimCluster(cfg)
	for i := 0; i < 8; i++ {
		c.AddBAT(BATSpec{ID: BATID(i), Size: 1 << 20, Owner: NodeID(i % 4)})
	}
	c.Submit(QuerySpec{ID: 1, Node: 0, Arrival: 0,
		Steps: []Step{{BAT: 1, Proc: 20 * time.Millisecond}}})
	c.Run(time.Minute)
	if c.QueriesDone() != 1 {
		t.Fatalf("done = %d", c.QueriesDone())
	}
	if c.Metrics().Finished.Count() != 1 {
		t.Fatal("metrics not recorded")
	}
}

func TestFacadeLiveRingSQL(t *testing.T) {
	columns := map[string]*BAT{
		"t.id":   MakeInts("t.id", []int64{1, 2, 3}),
		"t.name": MakeStrs("t.name", []string{"a", "b", "c"}),
		"t.w":    MakeFloats("t.w", []float64{0.5, 1.5, 2.5}),
	}
	schema := MapSchema{"t": {"id", "name", "w"}}
	ring, err := NewLiveRing(2, columns, schema, DefaultLiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer ring.Close()
	rs, err := ring.Node(1).ExecSQL("select name from t where id >= 2 order by name")
	if err != nil {
		t.Fatal(err)
	}
	if rs.NumRows() != 2 || rs.Row(0)[0] != "b" {
		t.Fatalf("rows = %v", rs.Rows())
	}
	// The hot-set cache surface: repeat queries hit, stats aggregate.
	if _, err := ring.Node(1).ExecSQL("select name from t where id >= 2 order by name"); err != nil {
		t.Fatal(err)
	}
	var cs LiveCacheStats = ring.CacheStats()
	if cs.Hits == 0 {
		t.Fatal("repeated query never hit the hot-set cache")
	}
	if mode := CacheMode(CacheLOI); mode.String() != "loi" || CacheMode(CacheLRU).String() != "lru" {
		t.Fatal("cache mode names wrong")
	}
}

func TestFacadeCompileAndRewrite(t *testing.T) {
	schema := MapSchema{"t": {"id"}}
	plan, err := CompileSQL("select id from t where id > 1", schema)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.String(), "sql.bind") {
		t.Fatal("plan missing bind")
	}
	dcPlan, err := RewriteDC(plan)
	if err != nil {
		t.Fatal(err)
	}
	text := dcPlan.String()
	for _, want := range []string{"datacyclotron.request", "datacyclotron.pin", "datacyclotron.unpin"} {
		if !strings.Contains(text, want) {
			t.Fatalf("rewritten plan missing %s", want)
		}
	}
}

func TestFacadeExperimentDispatch(t *testing.T) {
	if len(ExperimentIDs()) < 6 {
		t.Fatal("experiment list too short")
	}
	res, err := RunExperiment("fig1", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.String(), "Figure 1") {
		t.Fatal("fig1 report wrong")
	}
	if _, err := RunExperiment("nope", 1, 1); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestFacadeExperimentSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	res, err := RunExperiment("fig9", 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.String(), "Figure 9") {
		t.Fatal("fig9 report wrong")
	}
}
